"""Command-line interface: ``repro-lof`` / ``python -m repro``.

Subcommands
-----------
score
    Compute outlier scores for a CSV dataset and write a score file:
    ``repro-lof score data.csv --min-pts 10 50 --out scores.csv``
    With ``--store model.rlof`` the dataset is scored *online* against a
    persisted fitted model instead of fitting from scratch. ``--scorer``
    picks any registered detector (lof, ldof, loop, knn_dist).
fit
    Fit an estimator and persist the whole model (neighborhood graph,
    per-MinPts caches, scores, dataset snapshot) to a store file:
    ``repro-lof fit data.csv --min-pts 10 50 --out model.rlof``
serve
    Serve a persisted model over HTTP for online scoring; ``--workers``
    forks a fleet sharing one memmapped store and one port:
    ``repro-lof serve model.rlof --port 8000 --workers 4``
scorers
    List the registered local-outlier scorers and their descriptions.
rank
    Print the top outliers of a dataset:
    ``repro-lof rank data.csv --min-pts 10 50 --top 10``
topn
    Exact top-n outliers with Theorem-1 bound pruning:
    ``repro-lof topn data.csv --n 10 --min-pts 30``
materialize
    Step 1 of the two-step algorithm: build and persist the
    materialization database M:
    ``repro-lof materialize data.csv --min-pts-ub 50 --out data.mat``
sweep
    Step 2 from a persisted M: LOF statistics per MinPts value:
    ``repro-lof sweep data.mat --min-pts 10 50``
demo
    Run the Figure 9 synthetic demo end to end and print its ranking.
lint
    Run the repro.lint invariant analyzer over the tree; remaining
    arguments pass through to ``python -m repro.lint``:
    ``repro-lof lint -- --format json src tests``

Any subcommand accepts the top-level ``--profile`` flag, which runs it
inside an instrumentation scope (:mod:`repro.obs`) and emits the
counter/timer snapshot as JSON — to stderr, or to ``--profile-out PATH``:
``repro-lof --profile --profile-out profile.json demo``

Exit codes: 0 success; 2 user error (bad input, bad parameters, missing
files); 3 unusable model store (corrupt, truncated, wrong format or
version — :class:`~repro.exceptions.StoreError`), so scripted callers
can tell "fix the command" from "re-save the model".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from . import __version__, obs
from .core.estimator import LocalOutlierFactor
from .core.materialization import MaterializationDB
from .core.ranking import rank_outliers
from .core.topn import top_n_lof
from .datasets.paper import make_fig9_dataset
from .exceptions import ReproError, StoreError
from .io import (
    load_dataset,
    load_materialization,
    save_materialization,
    save_scores,
)


EXIT_USER_ERROR = 2
EXIT_STORE_ERROR = 3


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--min-pts", nargs="+", type=int, default=[10, 50], metavar="K",
        help="a single MinPts value, or a LB UB pair (default: 10 50)",
    )
    parser.add_argument(
        "--aggregate", choices=("max", "min", "mean", "median"), default="max",
        help="aggregation over the MinPts range (default: max, per Section 6.2)",
    )
    parser.add_argument(
        "--index", default="brute",
        help="k-NN substrate: brute, grid, kdtree, balltree, rstar, xtree, vafile",
    )
    parser.add_argument(
        "--metric", default="euclidean",
        help="distance metric: euclidean, manhattan, chebyshev",
    )
    parser.add_argument(
        "--engine", choices=("loop", "batched", "chunked"), default="loop",
        help="materialization engine (default: loop; 'chunked' is the "
             "cache-budgeted argkmin engine — sequential scan, --index "
             "ignored; identical scores either way)",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=None, metavar="N",
        help="parallel workers for the materialization step "
             "(default: serial; -1 = one per CPU; with --engine chunked "
             "this is the thread count; results are identical)",
    )


def _add_scorer_option(parser: argparse.ArgumentParser, help_suffix: str = "") -> None:
    parser.add_argument(
        "--scorer", default=None, metavar="NAME",
        help="registered local-outlier scorer: lof (default), ldof, loop, "
             "knn_dist — see 'repro-lof scorers'" + help_suffix,
    )


def _min_pts_arg(values: List[int]):
    if len(values) == 1:
        return values[0]
    if len(values) == 2:
        return (values[0], values[1])
    raise SystemExit("--min-pts takes one value or a LB UB pair")


def _fit(args, X) -> LocalOutlierFactor:
    est = LocalOutlierFactor(
        min_pts=_min_pts_arg(args.min_pts),
        aggregate=args.aggregate,
        metric=args.metric,
        index=args.index,
        engine=args.engine,
        n_jobs=args.n_jobs,
        scorer=getattr(args, "scorer", None) or "lof",
    )
    return est.fit(X)


def _cmd_score(args) -> int:
    X, labels = load_dataset(args.dataset)
    if args.store is not None:
        from .serve import OnlineScorer

        scorer = OnlineScorer.from_path(
            args.store, mmap=args.mmap, scorer=args.scorer
        )
        # A single --min-pts value scores a plain per-k score; otherwise
        # the stored model's own grid and aggregate apply.
        min_pts = args.min_pts[0] if len(args.min_pts) == 1 else None
        scores = scorer.score_new(X, min_pts=min_pts)
        save_scores(args.out, scores, labels=labels)
        print(
            f"wrote {len(scores)} online {scorer.scorer_name} scores "
            f"(store {args.store}) to {args.out}"
        )
        return 0
    est = _fit(args, X)
    save_scores(args.out, est.scores_, labels=labels)
    print(f"wrote {len(est.scores_)} {est.scorer} scores to {args.out}")
    return 0


def _cmd_fit(args) -> int:
    X, _ = load_dataset(args.dataset)
    est = LocalOutlierFactor(
        min_pts=_min_pts_arg(args.min_pts),
        aggregate=args.aggregate,
        metric=args.metric,
        index=args.index,
        duplicate_mode=args.duplicate_mode,
        threshold=args.threshold,
        engine=args.engine,
        n_jobs=args.n_jobs,
        scorer=args.scorer or "lof",
    ).fit(X)
    est.save(args.out)
    print(
        f"fitted {est.materialization_.n_points} objects "
        f"(MinPts {est.min_pts_values_[0]}..{est.min_pts_values_[-1]}, "
        f"aggregate={est.aggregate}, scorer={est.scorer}) "
        f"and saved the model to {args.out}"
    )
    return 0


def _cmd_serve(args) -> int:
    from .serve import run_fleet, run_server

    batch_window_ms = None if args.no_batch else args.batch_window_ms
    stream = None
    if args.stream:
        stream = {
            "check_every": args.stream_check_every,
            "drift_quantile": args.stream_drift_quantile,
            "drift_factor": args.stream_drift_factor,
            "reservoir": args.stream_reservoir,
            "seed": args.stream_seed,
        }
        if args.stream_window is not None:
            stream["window"] = args.stream_window
        if args.stream_cooldown is not None:
            stream["cooldown"] = args.stream_cooldown
        if args.stream_dir is not None:
            stream["store_dir"] = args.stream_dir
    if args.workers > 1:
        return run_fleet(
            args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_requests=args.max_requests,
            cache_size=args.cache_size,
            batch_window_ms=batch_window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            scorer=args.scorer,
            stream=stream,
        )
    return run_server(
        args.store,
        host=args.host,
        port=args.port,
        mmap=args.mmap,
        max_requests=args.max_requests,
        cache_size=args.cache_size,
        batch_window_ms=batch_window_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        scorer=args.scorer,
        stream=stream,
    )


def _cmd_scorers(args) -> int:
    from .scorers import get_scorer, list_scorers

    print("name       data  bounds  description")
    for name in list_scorers():
        s = get_scorer(name)
        needs = "X" if s.requires_data else "-"
        bounds = "yes" if s.supports_bounds else "-"
        print(f"{name:<10} {needs:>4}  {bounds:>6}  {s.description}")
    return 0


def _cmd_rank(args) -> int:
    X, labels = load_dataset(args.dataset)
    est = _fit(args, X)
    ranking = est.rank(top_n=args.top, threshold=args.threshold, labels=labels)
    print(ranking.to_table())
    return 0


def _cmd_topn(args) -> int:
    X, labels = load_dataset(args.dataset)
    result = top_n_lof(
        X,
        n_outliers=args.n,
        min_pts=args.min_pts[0] if len(args.min_pts) == 1 else max(args.min_pts),
        metric=args.metric,
        index=args.index,
    )
    rows = [
        f"{rank + 1:>3}  {score:6.2f}  "
        + (labels[i] if labels is not None else f"object {i}")
        for rank, (i, score) in enumerate(zip(result.ids, result.scores))
    ]
    print("rank  LOF    object")
    print("\n".join(rows))
    print(
        f"\nexact LOF evaluations: {result.exact_evaluations} of "
        f"{result.exact_evaluations + result.pruned} "
        f"({result.prune_fraction:.0%} pruned by Theorem-1 bounds)"
    )
    return 0


def _cmd_materialize(args) -> int:
    X, _ = load_dataset(args.dataset)
    if args.batched and args.chunked:
        print("error: --batched and --chunked are mutually exclusive",
              file=sys.stderr)
        return EXIT_USER_ERROR
    if args.chunked:
        from .core.blocked import fast_materialize

        mat = fast_materialize(
            X,
            args.min_pts_ub,
            metric=args.metric,
            block_size=args.block_size,
            duplicate_mode=args.duplicate_mode,
            strategy="auto",
            tile_bytes=args.tile_bytes,
            n_threads=args.n_jobs,
        )
    elif args.batched:
        mat = MaterializationDB.materialize_batched(
            X,
            args.min_pts_ub,
            index=args.index,
            metric=args.metric,
            block_size=args.block_size,
            duplicate_mode=args.duplicate_mode,
            n_jobs=args.n_jobs,
        )
    else:
        mat = MaterializationDB.materialize(
            X,
            args.min_pts_ub,
            index=args.index,
            metric=args.metric,
            duplicate_mode=args.duplicate_mode,
            n_jobs=args.n_jobs,
        )
    save_materialization(args.out, mat)
    print(
        f"materialized {mat.n_points} objects x MinPtsUB={mat.min_pts_ub} "
        f"({mat.size_in_records()} records) to {args.out}"
    )
    return 0


def _cmd_sweep(args) -> int:
    mat = load_materialization(args.materialization)
    lb, ub = (args.min_pts[0], args.min_pts[-1])
    print("MinPts    min    mean     max")
    for k in range(lb, ub + 1):
        lof = mat.lof(k)
        print(f"{k:6d}  {lof.min():5.2f}  {lof.mean():5.2f}  {lof.max():6.2f}")
    return 0


def _cmd_lint(args) -> int:
    # Lazy import: the analyzer is a dev-facing surface; scoring
    # commands must not pay for it.
    from .lint.cli import main as lint_main

    passthrough = list(args.lint_args)
    if passthrough and passthrough[0] == "--":
        passthrough = passthrough[1:]
    return lint_main(passthrough)


def _cmd_demo(args) -> int:
    dataset = make_fig9_dataset(seed=args.seed)
    est = LocalOutlierFactor(min_pts=40).fit(dataset.X)
    names = [dataset.label_names[label] for label in dataset.labels]
    ranking = rank_outliers(est.scores_, top_n=10, labels=names)
    print("Figure 9 demo: top-10 LOF (MinPts=40) on the 4-cluster dataset")
    print(ranking.to_table())
    planted = set(dataset.members("outlier"))
    hits = sum(1 for e in ranking if e.index in planted)
    print(f"\n{hits} of the top {len(ranking)} are the 7 planted outliers")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lof",
        description=(
            "LOF: Identifying Density-Based Local Outliers "
            "(Breunig, Kriegel, Ng, Sander; SIGMOD 2000) — reproduction CLI"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command with repro.obs instrumentation enabled and "
             "emit the counter/timer snapshot as JSON (stderr by default)",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="write the --profile JSON snapshot to this file instead of stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_score = sub.add_parser("score", help="compute LOF scores for a CSV dataset")
    p_score.add_argument("dataset", help="CSV written by repro.io.save_dataset")
    p_score.add_argument("--out", required=True, help="output score CSV")
    p_score.add_argument(
        "--store", default=None, metavar="PATH",
        help="score online against this persisted model store instead of "
             "fitting (a single --min-pts selects LOF_k; otherwise the "
             "stored grid and aggregate apply)",
    )
    p_score.add_argument(
        "--mmap", action="store_true",
        help="with --store: memory-map the store instead of reading it",
    )
    _add_common_options(p_score)
    _add_scorer_option(
        p_score,
        " (with --store: overrides the store's fitted scorer)",
    )
    p_score.set_defaults(func=_cmd_score)

    p_fit = sub.add_parser(
        "fit", help="fit an estimator and persist the model to a store file"
    )
    p_fit.add_argument("dataset", help="CSV written by repro.io.save_dataset")
    p_fit.add_argument("--out", required=True, help="output model store file")
    p_fit.add_argument(
        "--duplicate-mode", choices=("inf", "distinct", "error"), default="inf"
    )
    p_fit.add_argument(
        "--threshold", type=float, default=1.5,
        help="outlier threshold stored with the model (default: 1.5)",
    )
    _add_common_options(p_fit)
    _add_scorer_option(p_fit, " (recorded in the store header)")
    p_fit.set_defaults(func=_cmd_fit)

    p_serve = sub.add_parser(
        "serve", help="serve a persisted model over HTTP for online scoring"
    )
    p_serve.add_argument("store", help="model store written by 'fit'")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000)
    p_serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="shut down after N scored requests (default: serve forever)",
    )
    p_serve.add_argument(
        "--mmap", action="store_true",
        help="memory-map the store instead of reading it into RAM",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024, metavar="N",
        help="LRU entries for repeated-query reuse (0 disables)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fork N serving processes sharing one port and one "
             "memmapped store (implies --mmap; default: 1, in-process)",
    )
    p_serve.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="coalesce concurrent /score requests for up to MS "
             "milliseconds into one kernel call (default: 2.0)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="flush a coalesced batch once it holds N points "
             "(default: 64)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=1024, metavar="N",
        help="bounded /score request queue depth; a full queue blocks "
             "new requests (default: 1024)",
    )
    p_serve.add_argument(
        "--no-batch", action="store_true",
        help="disable request coalescing (score each request alone)",
    )
    _add_scorer_option(
        p_serve,
        " (service default; per-request \"scorer\" still overrides)",
    )
    p_serve.add_argument(
        "--stream", action="store_true",
        help="turn on the online lifecycle: ingest every scored point "
             "into a sliding window, detect score drift, refit in the "
             "background and hot-swap the serving model (requires "
             "--workers 1; see docs/streaming.md)",
    )
    p_serve.add_argument(
        "--stream-window", type=int, default=None, metavar="N",
        help="sliding-window capacity (default: 4x the store's MinPts "
             "upper bound, at least 64)",
    )
    p_serve.add_argument(
        "--stream-check-every", type=int, default=32, metavar="N",
        help="run a drift check every N ingested points (default: 32)",
    )
    p_serve.add_argument(
        "--stream-drift-quantile", type=float, default=0.9, metavar="Q",
        help="score quantile compared between recent and reference "
             "samples (default: 0.9)",
    )
    p_serve.add_argument(
        "--stream-drift-factor", type=float, default=2.0, metavar="F",
        help="declare drift when Q_q(recent) > F * Q_q(reference) "
             "(default: 2.0)",
    )
    p_serve.add_argument(
        "--stream-cooldown", type=int, default=None, metavar="N",
        help="minimum ingests between refits (default: the window size)",
    )
    p_serve.add_argument(
        "--stream-reservoir", type=int, default=64, metavar="N",
        help="reference reservoir-sample capacity (default: 64)",
    )
    p_serve.add_argument(
        "--stream-seed", type=int, default=0, metavar="SEED",
        help="reservoir sampler seed; replays are deterministic for a "
             "fixed seed (default: 0)",
    )
    p_serve.add_argument(
        "--stream-dir", default=None, metavar="DIR",
        help="directory refit stores are written to (default: the "
             "served store's directory)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_scorers = sub.add_parser(
        "scorers", help="list the registered local-outlier scorers"
    )
    p_scorers.set_defaults(func=_cmd_scorers)

    p_rank = sub.add_parser("rank", help="print the top outliers of a dataset")
    p_rank.add_argument("dataset", help="CSV written by repro.io.save_dataset")
    p_rank.add_argument("--top", type=int, default=10, help="rows to print")
    p_rank.add_argument(
        "--threshold", type=float, default=None,
        help="only print objects with LOF above this",
    )
    _add_common_options(p_rank)
    p_rank.set_defaults(func=_cmd_rank)

    p_topn = sub.add_parser(
        "topn", help="exact top-n outliers with Theorem-1 bound pruning"
    )
    p_topn.add_argument("dataset", help="CSV written by repro.io.save_dataset")
    p_topn.add_argument("--n", type=int, default=10, help="outliers to mine")
    _add_common_options(p_topn)
    p_topn.set_defaults(func=_cmd_topn)

    p_mat = sub.add_parser(
        "materialize", help="build and persist the materialization database M"
    )
    p_mat.add_argument("dataset", help="CSV written by repro.io.save_dataset")
    p_mat.add_argument("--out", required=True, help="output .mat file")
    p_mat.add_argument("--min-pts-ub", type=int, default=50)
    p_mat.add_argument("--index", default="brute")
    p_mat.add_argument("--metric", default="euclidean")
    p_mat.add_argument(
        "--duplicate-mode", choices=("inf", "distinct", "error"), default="inf"
    )
    p_mat.add_argument(
        "--n-jobs", type=int, default=None, metavar="N",
        help="parallel workers for the query loop (-1 = one per CPU)",
    )
    p_mat.add_argument(
        "--batched", action="store_true",
        help="build the neighborhood graph through the batched index "
             "front door (one query_batch_with_ties call per block)",
    )
    p_mat.add_argument(
        "--block-size", type=int, default=512, metavar="B",
        help="query rows per batched/chunked block (default: 512)",
    )
    p_mat.add_argument(
        "--chunked", action="store_true",
        help="build through the cache-budgeted chunked argkmin engine "
             "(sequential scan; --index ignored; --n-jobs sets the "
             "thread fan-out); mutually exclusive with --batched",
    )
    p_mat.add_argument(
        "--tile-bytes", type=int, default=None, metavar="BYTES",
        help="with --chunked: per-tile distance-slab byte budget "
             "(default: 8 MiB)",
    )
    p_mat.set_defaults(func=_cmd_materialize)

    p_sweep = sub.add_parser(
        "sweep", help="LOF statistics per MinPts from a persisted M"
    )
    p_sweep.add_argument("materialization", help=".mat file from 'materialize'")
    p_sweep.add_argument(
        "--min-pts", nargs="+", type=int, default=[10, 50], metavar="K"
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_demo = sub.add_parser("demo", help="run the Figure 9 synthetic demo")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(func=_cmd_demo)

    p_lint = sub.add_parser(
        "lint", help="run the repro.lint invariant analyzer over the tree"
    )
    p_lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="arguments passed through to python -m repro.lint "
             "(prefix with -- to forward flags)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def _emit_profile(snapshot: dict, out_path: Optional[str]) -> None:
    payload = json.dumps(snapshot, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote instrumentation profile to {out_path}", file=sys.stderr)
    else:
        print(payload, file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile:
            with obs.collect() as snapshot:
                rc = args.func(args)
            _emit_profile(snapshot, args.profile_out)
            return rc
        return args.func(args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STORE_ERROR
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
