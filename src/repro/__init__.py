"""repro — a full reproduction of *LOF: Identifying Density-Based Local
Outliers* (Breunig, Kriegel, Ng & Sander, SIGMOD 2000).

Quickstart
----------
>>> import numpy as np
>>> from repro import LocalOutlierFactor
>>> rng = np.random.default_rng(0)
>>> X = np.vstack([rng.normal(size=(200, 2)), [[8.0, 8.0]]])
>>> est = LocalOutlierFactor(min_pts=(10, 30)).fit(X)
>>> int(np.argmax(est.scores_)) == 200
True

Package layout
--------------
:mod:`repro.core`
    the paper's contribution: Definitions 3-7, the Section 5 bounds,
    the Section 6.2 MinPts-range heuristic and the Section 7.4 two-step
    algorithm, plus incremental maintenance. Internally layered as
    index → graph → kernel → surfaces (``docs/architecture.md``): every
    surface shares one :class:`~repro.core.graph.NeighborhoodGraph` and
    the :mod:`repro.core.scoring` kernels.
:mod:`repro.index`
    the k-NN substrates the algorithm runs on: sequential scan, grid,
    kd-tree, ball tree, R*-tree, X-tree and VA-file.
:mod:`repro.baselines`
    the comparators of Sections 2-3 (DB-outliers, kth-NN-distance
    ranking, hull-peeling depth, DBSCAN, OPTICS, z-score/Mahalanobis).
:mod:`repro.datasets`
    seeded synthetic generators for every figure and table, including
    distribution-matched stand-ins for the proprietary NHL and
    Bundesliga data.
:mod:`repro.analysis`
    theory curves (figures 4-5), MinPts sweeps (figures 7-8), empirical
    theorem validation, and per-dimension explanations.
:mod:`repro.io`
    CSV persistence for datasets and score files.
:mod:`repro.store`
    the versioned on-disk model store: checksummed, memmap-loadable
    persistence of a fitted model (see ``docs/serving.md``).
:mod:`repro.serve`
    online scoring of unseen points against a loaded store, plus the
    JSON-over-HTTP scoring service behind ``repro-lof serve``.
:mod:`repro.obs`
    opt-in instrumentation: deterministic op counters, timer spans and
    JSON stats export (see ``docs/observability.md``).
:mod:`repro.scorers`
    the pluggable local-outlier scorer registry — LOF, LDOF, LoOP and
    kth-NN-distance over the one neighborhood graph (see
    ``docs/scorers.md``).
"""

from .core import (
    IncrementalLOF,
    LocalOutlierFactor,
    MaterializationDB,
    NeighborhoodGraph,
    OutlierRanking,
    RangeLOFResult,
    k_distance,
    k_distance_neighborhood,
    lof_range,
    lof_scores,
    local_reachability_density,
    materialize,
    materialize_batched,
    rank_outliers,
    reach_dist,
    reachability_matrix,
    score_range,
    suggest_min_pts_range,
)
from .exceptions import (
    DuplicatePointsError,
    NotFittedError,
    ReproError,
    ServeError,
    SpatialIndexError,
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
    StoreMismatchError,
    StoreVersionError,
    ValidationError,
)
from .index import available_indexes, make_index
from .scorers import Scorer, ScorerContext, get_scorer, list_scorers
from .scorers import register as register_scorer
from . import obs

__version__ = "1.1.0"

# store imports the version string above; keep this import below it.
from .store import load_model, save_model  # noqa: E402

__all__ = [
    "IncrementalLOF",
    "LocalOutlierFactor",
    "MaterializationDB",
    "NeighborhoodGraph",
    "OutlierRanking",
    "RangeLOFResult",
    "k_distance",
    "k_distance_neighborhood",
    "lof_range",
    "lof_scores",
    "local_reachability_density",
    "materialize",
    "materialize_batched",
    "rank_outliers",
    "reach_dist",
    "reachability_matrix",
    "score_range",
    "suggest_min_pts_range",
    "Scorer",
    "ScorerContext",
    "get_scorer",
    "list_scorers",
    "register_scorer",
    "DuplicatePointsError",
    "NotFittedError",
    "ReproError",
    "ServeError",
    "SpatialIndexError",
    "StoreCorruptionError",
    "StoreError",
    "StoreFormatError",
    "StoreMismatchError",
    "StoreVersionError",
    "ValidationError",
    "available_indexes",
    "make_index",
    "load_model",
    "save_model",
    "obs",
    "__version__",
]
