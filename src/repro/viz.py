"""Terminal visualization — dependency-free renderings of the paper's
plots.

Every figure in the paper is a plot; this module renders their
terminal equivalents so the examples and benchmarks can *show* results,
not just assert them:

* :func:`ascii_heatmap` — the figure-9 LOF surface as a glyph grid;
* :func:`sparkline` — one-line LOF-vs-MinPts curves (figure 8);
* :func:`bar_chart` — horizontal bars for ranked scores (Table 3);
* :func:`reachability_bars` — the OPTICS reachability plot;
* :func:`scatter` — a coarse point plot with per-class glyphs
  (figure 1's dataset views).

All functions return strings (print them yourself), never exceed the
requested width, and use only ASCII unless ``unicode=True``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ._validation import check_data
from .exceptions import ValidationError

_ASCII_RAMP = " .:-=+*#%@"
_UNICODE_RAMP = " ▁▂▃▄▅▆▇█"


def _ramp(unicode: bool) -> str:
    return _UNICODE_RAMP if unicode else _ASCII_RAMP


def _level(value: float, lo: float, hi: float, n_levels: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return int(np.clip(frac * (n_levels - 1), 0, n_levels - 1))


def sparkline(
    values,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    unicode: bool = True,
) -> str:
    """Render a sequence of values as a one-line bar profile."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if len(values) == 0:
        raise ValidationError("values must be non-empty")
    lo = float(values.min()) if lo is None else float(lo)
    hi = float(values.max()) if hi is None else float(hi)
    ramp = _ramp(unicode)
    return "".join(ramp[_level(v, lo, hi, len(ramp))] for v in values)


def bar_chart(
    labels: Sequence[str],
    values,
    width: int = 40,
    unicode: bool = True,
) -> str:
    """Horizontal bars, one row per (label, value), scaled to the max."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    labels = list(labels)
    if len(labels) != len(values):
        raise ValidationError("labels and values must have equal length")
    if len(values) == 0:
        raise ValidationError("values must be non-empty")
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    peak = float(values.max())
    bar_glyph = "█" if unicode else "#"
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        n = 0 if peak <= 0 else int(round(width * max(value, 0.0) / peak))
        lines.append(f"{label:<{label_width}}  {bar_glyph * n} {value:.2f}")
    return "\n".join(lines)


def ascii_heatmap(
    X,
    values,
    width: int = 70,
    height: int = 22,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    unicode: bool = False,
) -> str:
    """Bin 2-d points on a character grid; each cell shows the maximum
    of ``values`` among its points (the figure-9 surface view)."""
    X = check_data(X, min_rows=1)
    if X.shape[1] != 2:
        raise ValidationError("ascii_heatmap requires 2-d points")
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if len(values) != len(X):
        raise ValidationError("values must align with X rows")
    if width < 2 or height < 2:
        raise ValidationError("width and height must be >= 2")
    box_lo = X.min(axis=0)
    span = np.where(X.max(axis=0) > box_lo, X.max(axis=0) - box_lo, 1.0)
    cols = np.minimum(((X[:, 0] - box_lo[0]) / span[0] * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((X[:, 1] - box_lo[1]) / span[1] * (height - 1)).astype(int), height - 1)
    grid = np.full((height, width), -np.inf)
    for r, c, v in zip(rows, cols, values):
        grid[r, c] = max(grid[r, c], v)
    lo = float(values.min()) if lo is None else float(lo)
    hi = float(values.max()) if hi is None else float(hi)
    ramp = _ramp(unicode)
    lines = []
    for r in range(height - 1, -1, -1):
        line = []
        for c in range(width):
            v = grid[r, c]
            if not np.isfinite(v):
                line.append(" ")
            else:
                # Occupied cells render at least the first visible glyph.
                line.append(ramp[max(1, _level(v, lo, hi, len(ramp)))])
        lines.append("".join(line))
    return "\n".join(lines)


def reachability_bars(
    reachability_in_order,
    height: int = 10,
    unicode: bool = True,
) -> str:
    """Render an OPTICS reachability plot as a column chart.

    Infinite entries (component starts) render as full-height markers.
    """
    vals = np.asarray(reachability_in_order, dtype=np.float64).reshape(-1)
    if len(vals) == 0:
        raise ValidationError("reachability sequence must be non-empty")
    if height < 2:
        raise ValidationError("height must be >= 2")
    finite = vals[np.isfinite(vals)]
    peak = float(finite.max()) if len(finite) else 1.0
    columns = []
    for v in vals:
        if not np.isfinite(v):
            columns.append(height)  # component boundary: full column
        else:
            columns.append(max(1, int(round(height * v / peak))) if peak > 0 else 1)
    glyph = "█" if unicode else "#"
    boundary = "!" if not unicode else "│"
    lines = []
    for level in range(height, 0, -1):
        row = []
        for v, col in zip(vals, columns):
            if not np.isfinite(v):
                row.append(boundary)
            else:
                row.append(glyph if col >= level else " ")
        lines.append("".join(row))
    return "\n".join(lines)


def scatter(
    X,
    labels=None,
    width: int = 70,
    height: int = 22,
    glyphs: str = "ox+*sdv^",
) -> str:
    """Coarse 2-d scatter plot; points of class i use ``glyphs[i]``."""
    X = check_data(X, min_rows=1)
    if X.shape[1] != 2:
        raise ValidationError("scatter requires 2-d points")
    if labels is None:
        labels = np.zeros(len(X), dtype=int)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if len(labels) != len(X):
        raise ValidationError("labels must align with X rows")
    if labels.min() < 0 or labels.max() >= len(glyphs):
        raise ValidationError(
            f"labels must index into the {len(glyphs)} available glyphs"
        )
    box_lo = X.min(axis=0)
    span = np.where(X.max(axis=0) > box_lo, X.max(axis=0) - box_lo, 1.0)
    cols = np.minimum(((X[:, 0] - box_lo[0]) / span[0] * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((X[:, 1] - box_lo[1]) / span[1] * (height - 1)).astype(int), height - 1)
    grid = [[" "] * width for _ in range(height)]
    for r, c, lab in zip(rows, cols, labels):
        grid[r][c] = glyphs[lab]
    return "\n".join("".join(row) for row in reversed(grid))
