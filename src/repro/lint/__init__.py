"""repro.lint — AST-based invariant analyzer for the repro codebase.

The repository rests on architectural invariants that no runtime test
can fully guard: exactly one scoring kernel behind every surface, a
strict ``index → graph → kernel → surfaces`` import order, an exact
obs-counter registry, a typed exception taxonomy at the store/serve
trust boundary, lock discipline in the online scorer, and determinism
rules (no wall-clock asserts, no unseeded RNG, no float ``==`` on score
arrays). This package turns each of those contracts into a first-class
static-analysis rule with a stable ID (``RL001`` …), run as::

    python -m repro.lint [paths ...]          # default: src tests
    repro-lof lint                            # CLI subcommand

Findings can be suppressed per line with ``# reprolint: disable=RL001``
(comma-separate several IDs) or for a whole file with a standalone
``# reprolint: disable-file=RL001`` comment; every suppression should
carry a reason. See ``docs/static-analysis.md`` for the rule catalog.

Programmatic use (what ``tests/test_layering.py`` does)::

    from repro.lint import lint_paths
    report = lint_paths(["src", "tests"], root=PROJECT_ROOT)
    assert not report.findings
"""

from .engine import (
    Finding,
    FileContext,
    LintReport,
    Project,
    Rule,
    lint_paths,
    lint_source,
)
from .rules import RULES, get_rules
from .obsreg import generate_registry_source, scan_producers, write_registry

__all__ = [
    "Finding",
    "FileContext",
    "LintReport",
    "Project",
    "Rule",
    "RULES",
    "get_rules",
    "lint_paths",
    "lint_source",
    "generate_registry_source",
    "scan_producers",
    "write_registry",
]
