"""Lock-set dataflow for repro.lint's concurrency rules (RL009-RL011).

Two layers:

**Local (per function).** A block-structured walk of each function body
computes, for every ``Call``/``Attribute`` node, the set of locks held
at that point — ``with self._lock:`` adds for the nested block,
``x.acquire()`` adds for the rest of the enclosing block,
``x.release()`` removes. Branches are analyzed at their entry set;
effects inside a branch do not leak out (a may/must compromise that is
exact for the ``with``-dominated style this codebase enforces via
RL005). Acquire events additionally record what was held at the moment
of acquisition — the raw material of the lock-order graph.

**Interprocedural.** On top of :mod:`repro.lint.callgraph`:

* ``must_held(entry)`` — for every function reachable from a thread
  entry, the set of locks held on *every* call path from that entry
  (intersection fixpoint, TOP-initialized). A guard lock missing from
  ``must_held`` at an access means some path reaches the access with
  the lock free — the RL009 race condition.
* ``may_held()`` — the union closure over *all* callers; used to build
  the acquired-while-holding graph conservatively (RL010) and the
  hot-lock set (RL011).

Lock identity is ``(owner, attr, kind)``: class-owned ``self._lock``
style locks key on the defining class' qualname (resolved through
linted base classes), module-level locks on the module name. ``kind``
distinguishes ``Lock`` from ``RLock`` — re-acquiring an RLock you
already hold is legal and produces no order edge; doing so with a plain
``Lock`` is a guaranteed self-deadlock.

Known unsoundness (mirrors the call graph, documented in
docs/static-analysis.md): locks reached through ``getattr``, stored in
containers, or aliased through untyped locals are invisible;
conditional ``acquire(timeout=...)`` returns are treated as successful
acquisition.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set, Tuple

from .callgraph import CallGraph, CallSite, FunctionInfo, ThreadEntry
from .engine import Project

__all__ = [
    "LockId",
    "AcquireEvent",
    "FunctionFacts",
    "ConcurrencyModel",
    "blocking_call_reason",
]


class LockId(NamedTuple):
    """One lock object, as precisely as static analysis can name it."""

    owner: str  # class qualname for self.X locks, module name otherwise
    attr: str   # attribute / variable name, e.g. "_lock"
    kind: str   # "lock" | "rlock" | "implicit"

    def render(self) -> str:
        owner = self.owner.rsplit(".", 1)[-1] if "." in self.owner else self.owner
        return f"{owner}.{self.attr}"


class AcquireEvent(NamedTuple):
    """``lock`` acquired at ``node`` while ``held_before`` were held
    locally (interprocedural holders are added by the model)."""

    lock: LockId
    node: ast.AST
    held_before: FrozenSet[LockId]


class FunctionFacts:
    """Local lock facts for one function."""

    __slots__ = ("info", "held_at", "acquires")

    def __init__(self, info: FunctionInfo):
        self.info = info
        #: id(node) -> frozenset of locks held when node evaluates
        self.held_at: Dict[int, FrozenSet[LockId]] = {}
        self.acquires: List[AcquireEvent] = []

    def held(self, node: ast.AST) -> FrozenSet[LockId]:
        return self.held_at.get(id(node), frozenset())


# ---------------------------------------------------------------------------
# blocking-call heuristics (RL011 queries these)

#: method names that block unconditionally on another thread/process
_BLOCKING_METHODS = {
    "join": "joins a thread/process",
    "wait": "waits on an event/condition",
    "sendall": "blocks on a socket send",
    "recv": "blocks on a socket receive",
    "accept": "blocks accepting a connection",
    "result": "waits on a future",
    "waitpid": "waits on a child process",
}

#: queue verbs — blocking only when the receiver looks like a queue
_QUEUE_METHODS = {"get", "put"}

#: module-level callables that block
_BLOCKING_FUNCS = {
    ("time", "sleep"): "sleeps",
    ("subprocess", "run"): "runs a subprocess to completion",
    ("subprocess", "check_call"): "runs a subprocess to completion",
    ("subprocess", "check_output"): "runs a subprocess to completion",
    ("subprocess", "call"): "runs a subprocess to completion",
    ("subprocess", "Popen"): "spawns a subprocess",
    ("select", "select"): "blocks in select()",
    ("os", "waitpid"): "waits on a child process",
}


def blocking_call_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` is considered blocking, or None when it is not.

    Deliberately conservative about ``join`` (string ``sep.join`` and
    ``os.path.join`` are the common false positives) and about queue
    verbs (``get`` is ubiquitous on dicts: only flagged when the
    receiver's name smells like a queue)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name) and isinstance(func.attr, str):
        key = (base.id, func.attr)
        if key in _BLOCKING_FUNCS:
            return _BLOCKING_FUNCS[key]
    name = func.attr
    if name == "join":
        # "sep".join(...), os.path.join(...), Path joins
        if isinstance(base, ast.Constant):
            return None
        if isinstance(base, ast.Attribute) and base.attr == "path":
            return None
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if "path" in base_name.lower() or "sep" in base_name.lower():
            return None
        return _BLOCKING_METHODS["join"]
    if name in _QUEUE_METHODS:
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        low = base_name.lower()
        if "queue" in low or low in ("q", "inbox", "outbox", "jobs", "work"):
            return f"blocks on queue.{name}()"
        return None
    if name in _BLOCKING_METHODS:
        return _BLOCKING_METHODS[name]
    return None


# ---------------------------------------------------------------------------
# lock registry


def _lock_ctor_kind(value) -> Optional[str]:
    """'lock' / 'rlock' when ``value`` constructs a threading lock."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "Lock":
        return "lock"
    if name == "RLock":
        return "rlock"
    return None


class _LockRegistry:
    """Every lock object declared in the linted tree."""

    def __init__(self):
        #: (owner, attr) -> LockId
        self.by_key: Dict[Tuple[str, str], LockId] = {}

    def add(self, owner: str, attr: str, kind: str) -> LockId:
        lock = LockId(owner, attr, kind)
        self.by_key[(owner, attr)] = lock
        return lock

    def collect(self, graph: CallGraph, project: Project) -> None:
        from .callgraph import _pseudo_module

        for ctx in project.contexts:
            if ctx.tree is None:
                continue
            module = ctx.module or _pseudo_module(ctx.rel)
            for node in ctx.tree.body:
                if isinstance(node, ast.Assign):
                    kind = _lock_ctor_kind(node.value)
                    if kind:
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                self.add(module, t.id, kind)
                elif isinstance(node, ast.ClassDef):
                    cls_qual = f"{module}.{node.name}"
                    for sub in ast.walk(node):
                        if not isinstance(sub, ast.Assign):
                            continue
                        kind = _lock_ctor_kind(sub.value)
                        if not kind:
                            continue
                        for t in sub.targets:
                            if (
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                            ):
                                self.add(cls_qual, t.attr, kind)

    def lookup_class(
        self, graph: CallGraph, cls_qual: str, attr: str
    ) -> Optional[LockId]:
        """(cls, attr) resolved through linted base classes."""
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            hit = self.by_key.get((cur, attr))
            if hit:
                return hit
            mod = cur.rsplit(".", 1)[0]
            for base in graph.class_bases.get(cur, ()):
                base_qual = graph.module_classes.get((mod, base))
                if base_qual:
                    stack.append(base_qual)
        return None

    def class_locks(self, graph: CallGraph, cls_qual: str) -> List[LockId]:
        """All locks owned by ``cls_qual`` or its linted bases."""
        out: List[LockId] = []
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            out.extend(
                lock for (owner, _), lock in self.by_key.items() if owner == cur
            )
            mod = cur.rsplit(".", 1)[0]
            for base in graph.class_bases.get(cur, ()):
                base_qual = graph.module_classes.get((mod, base))
                if base_qual:
                    stack.append(base_qual)
        return out


# ---------------------------------------------------------------------------
# local analysis


class _LocalAnalyzer:
    """Block-structured walk producing :class:`FunctionFacts`."""

    def __init__(self, model: "ConcurrencyModel", info: FunctionInfo):
        self.model = model
        self.info = info
        self.facts = FunctionFacts(info)

    def run(self) -> FunctionFacts:
        self._walk_block(self.info.node.body, frozenset())
        return self.facts

    # the walk --------------------------------------------------------------

    def _walk_block(self, stmts, held_in: FrozenSet[LockId]) -> None:
        held: Set[LockId] = set(held_in)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs analyzed as their own functions
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                entered: List[LockId] = []
                for item in stmt.items:
                    self._record(item.context_expr, frozenset(held) | set(entered))
                    lock = self._resolve_lock(item.context_expr)
                    if lock is not None:
                        self.facts.acquires.append(
                            AcquireEvent(lock, item.context_expr,
                                         frozenset(held) | set(entered))
                        )
                        entered.append(lock)
                self._walk_block(stmt.body, frozenset(held) | set(entered))
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                func = call.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "acquire", "release"
                ):
                    lock = self._resolve_lock(func.value)
                    if lock is not None:
                        self._record(call, frozenset(held))
                        if func.attr == "acquire":
                            self.facts.acquires.append(
                                AcquireEvent(lock, call, frozenset(held))
                            )
                            held.add(lock)
                        else:
                            held.discard(lock)
                        continue
            blocks = self._sub_blocks(stmt)
            if blocks:
                self._record_header(stmt, blocks, frozenset(held))
                for block in blocks:
                    self._walk_block(block, frozenset(held))
            else:
                self._record(stmt, frozenset(held))

    @staticmethod
    def _sub_blocks(stmt) -> List[list]:
        blocks = []
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                blocks.append(sub)
        for handler in getattr(stmt, "handlers", ()) or ():
            if handler.body:
                blocks.append(handler.body)
        return blocks

    def _record_header(self, stmt, blocks, held: FrozenSet[LockId]) -> None:
        """Record expressions in a compound statement's header (test,
        iterable, ...) — everything that is not one of its blocks."""
        skip = {id(s) for block in blocks for s in block}
        for child in ast.iter_child_nodes(stmt):
            if id(child) in skip or isinstance(child, ast.stmt):
                continue
            self._record(child, held)

    def _record(self, node, held: FrozenSet[LockId]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(sub, (ast.Call, ast.Attribute, ast.Name)):
                self.facts.held_at[id(sub)] = held

    # lock naming -----------------------------------------------------------

    def _resolve_lock(self, expr) -> Optional[LockId]:
        registry = self.model.registry
        graph = self.model.graph
        # with self._lock.acquire()? — normalize a trailing .acquire call
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr == "acquire":
            expr = expr.func.value
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base = expr.value.id
            if base in ("self", "cls") and self.info.cls is not None:
                cls_qual = f"{self.info.module}.{self.info.cls}"
                lock = registry.lookup_class(graph, cls_qual, expr.attr)
                if lock is not None:
                    return lock
                if "lock" in expr.attr.lower():
                    # with self._lock: on an attr we never saw constructed
                    return registry.add(cls_qual, expr.attr, "implicit")
                return None
            # mod._lock through an import alias is rare; only resolve
            # same-module class attributes beyond self/cls via types
            base_cls = self._typed_local(base)
            if base_cls is not None:
                return registry.lookup_class(graph, base_cls, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            return registry.by_key.get((self.info.module, expr.id))
        return None

    def _typed_local(self, name: str) -> Optional[str]:
        # function_locals needs the module index; the model keeps one
        # per module for exactly this call.
        idx = self.model.indexes.get(self.info.ctx.rel)
        if idx is None:
            return None
        types = self.model.graph.types
        cls_qual = (
            f"{self.info.module}.{self.info.cls}" if self.info.cls else None
        )
        locals_t = types.function_locals(idx, self.info.node, cls_qual)
        return locals_t.get(name)


# ---------------------------------------------------------------------------
# the interprocedural model


class ConcurrencyModel:
    """Call graph + lock registry + per-function facts + fixpoints.

    Built once per lint run (see ``Project.cached``) and shared by
    RL009/RL010/RL011.
    """

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.registry = _LockRegistry()
        self.registry.collect(graph, project)
        # module indexes built during graph construction, for typed-local
        # lookups inside _LocalAnalyzer
        self.indexes = graph.indexes
        self.facts: Dict[str, FunctionFacts] = {}
        for qual, info in graph.functions.items():
            self.facts[qual] = _LocalAnalyzer(self, info).run()
        self._must_cache: Dict[str, Dict[str, Optional[FrozenSet[LockId]]]] = {}
        self._may_cache: Optional[Dict[str, FrozenSet[LockId]]] = None

    @classmethod
    def for_project(cls, project: Project) -> "ConcurrencyModel":
        from .callgraph import build_call_graph

        def build():
            return cls(project, build_call_graph(project))

        return project.cached("concurrency_model", build)

    # -- must-held ----------------------------------------------------------

    def must_held(self, entry_target: str) -> Dict[str, FrozenSet[LockId]]:
        """For each function reachable from ``entry_target``, the locks
        held on EVERY call path from that entry (the entry starts with
        none). TOP-initialized intersection fixpoint."""
        cached = self._must_cache.get(entry_target)
        if cached is None:
            cached = self._compute_must(entry_target)
            self._must_cache[entry_target] = cached
        return {
            qual: (held if held is not None else frozenset())
            for qual, held in cached.items()
        }

    def _compute_must(self, entry_target: str):
        reach = self.graph.reachable_from(entry_target)
        held: Dict[str, Optional[FrozenSet[LockId]]] = {
            q: None for q in reach  # None = TOP (unvisited)
        }
        held[entry_target] = frozenset()
        changed = True
        rounds = 0
        while changed and rounds <= len(reach) + 2:
            changed = False
            rounds += 1
            for qual in reach:
                incoming: Optional[FrozenSet[LockId]] = None
                if qual == entry_target:
                    incoming = frozenset()
                for site in self.graph.callers.get(qual, ()):
                    if site.caller not in reach:
                        continue
                    caller_held = held.get(site.caller)
                    if caller_held is None:
                        continue  # TOP contributes nothing yet
                    at_site = caller_held | self.site_held(site)
                    incoming = (
                        at_site if incoming is None else incoming & at_site
                    )
                # must-sets only shrink: TOP-initialized intersection of
                # constant per-site contributions is monotone decreasing
                if incoming is not None and incoming != held[qual]:
                    held[qual] = incoming
                    changed = True
        return held

    def site_held(self, site: CallSite) -> FrozenSet[LockId]:
        facts = self.facts.get(site.caller)
        if facts is None:
            return frozenset()
        return facts.held(site.node)

    # -- may-held -----------------------------------------------------------

    def may_held(self) -> Dict[str, FrozenSet[LockId]]:
        """Locks possibly already held when each function is entered,
        over all callers (union fixpoint from the empty set)."""
        if self._may_cache is not None:
            return self._may_cache
        held: Dict[str, Set[LockId]] = {q: set() for q in self.graph.functions}
        changed = True
        rounds = 0
        while changed and rounds <= len(held) + 2:
            changed = False
            rounds += 1
            for qual in self.graph.functions:
                for site in self.graph.callers.get(qual, ()):
                    inherit = held.get(site.caller, set()) | self.site_held(site)
                    if not inherit <= held[qual]:
                        held[qual] |= inherit
                        changed = True
        self._may_cache = {q: frozenset(s) for q, s in held.items()}
        return self._may_cache

    # -- lock-order graph ---------------------------------------------------

    def order_edges(self):
        """``(held_lock, acquired_lock) -> (fn_qual, node)`` witness for
        every acquired-while-holding pair, plus plain-Lock self-acquires
        as ``(lock, lock)`` edges (self-deadlock)."""
        may = self.may_held()
        edges: Dict[Tuple[LockId, LockId], Tuple[str, ast.AST]] = {}
        for qual, facts in self.facts.items():
            ambient = may.get(qual, frozenset())
            for event in facts.acquires:
                holding = event.held_before | ambient
                for prior in holding:
                    if prior == event.lock:
                        if event.lock.kind == "rlock":
                            continue  # re-entrant: legal, no edge
                        edges.setdefault(
                            (prior, event.lock), (qual, event.node)
                        )
                        continue
                    edges.setdefault((prior, event.lock), (qual, event.node))
        return edges

    def order_cycles(self):
        """Cycles in the acquired-while-holding graph, canonicalized so
        each cycle is reported once. Returns a list of lists of
        ``(lock, next_lock, fn_qual, node)`` steps."""
        edges = self.order_edges()
        adj: Dict[LockId, List[LockId]] = {}
        for (a, b) in edges:
            if a != b:  # self-deadlocks are reported separately below
                adj.setdefault(a, []).append(b)
        cycles = []
        seen_keys = set()

        def dfs(start: LockId, cur: LockId, path: List[LockId], on_path: Set[LockId]):
            for nxt in adj.get(cur, ()):
                if nxt == start and len(path) >= 1:
                    cycle = path[:]
                    key = frozenset(cycle)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        steps = []
                        ordered = cycle + [cycle[0]]
                        for i in range(len(cycle)):
                            a, b = ordered[i], ordered[i + 1]
                            fn, node = edges[(a, b)]
                            steps.append((a, b, fn, node))
                        cycles.append(steps)
                elif nxt not in on_path and nxt > start:
                    # only walk "greater" nodes so each cycle is found
                    # from its smallest lock exactly once
                    dfs(start, nxt, path + [nxt], on_path | {nxt})

        for (a, b) in list(edges):
            if a == b:  # plain-Lock self-deadlock: a one-step cycle
                fn, node = edges[(a, b)]
                cycles.append([(a, b, fn, node)])
        for start in sorted(adj):
            dfs(start, start, [start], {start})
        return cycles

    # -- hot path (RL011) ---------------------------------------------------

    def hot_entries(self) -> List[ThreadEntry]:
        """Entries on the serving hot path: HTTP request handlers."""
        return [e for e in self.graph.entries if e.kind == "handler"]

    def hot_locks(self) -> FrozenSet[LockId]:
        """Locks held anywhere on a handler-reachable path: blocking
        while holding one of these stalls live request threads."""
        hot: Set[LockId] = set()
        for entry in self.hot_entries():
            for qual in self.graph.reachable_from(entry.target):
                facts = self.facts.get(qual)
                if facts is None:
                    continue
                for event in facts.acquires:
                    hot.add(event.lock)
        return frozenset(hot)

    # -- witnesses ----------------------------------------------------------

    def lock_free_path(
        self, entry_target: str, dst: str, lock: LockId
    ) -> Optional[List[CallSite]]:
        """A call chain entry -> dst along which ``lock`` is never held
        at any call site (BFS, shortest). None when every path holds
        the lock somewhere — i.e. the access is actually protected."""
        from collections import deque

        if entry_target == dst:
            return []
        prev: Dict[str, CallSite] = {}
        seen = {entry_target}
        q = deque([entry_target])
        while q:
            cur = q.popleft()
            for site in self.graph.calls.get(cur, ()):
                if site.callee in seen:
                    continue
                if lock in self.site_held(site):
                    continue
                prev[site.callee] = site
                if site.callee == dst:
                    chain: List[CallSite] = []
                    node = dst
                    while node != entry_target:
                        site = prev[node]
                        chain.append(site)
                        node = site.caller
                    chain.reverse()
                    return chain
                seen.add(site.callee)
                q.append(site.callee)
        return None

    def render_chain(self, entry: ThreadEntry, chain: List[CallSite]) -> List[str]:
        """Human-readable witness lines: entry, then each hop."""
        lines = [f"thread entry: {entry.label} -> {entry.target}"]
        for site in chain:
            line = getattr(site.node, "lineno", "?")
            rel = self.rel_of(site.caller)
            lines.append(f"  {site.caller} calls {site.callee} ({rel}:{line})")
        return lines

    def rel_of(self, qual: str) -> str:
        info = self.graph.functions.get(qual)
        return info.ctx.rel if info is not None else "?"
