"""Command-line front door: ``python -m repro.lint`` / ``repro-lof lint``.

Exit codes follow the library convention: 0 clean, 1 non-suppressed
finding(s), 2 usage error (unknown rule ID, no files matched).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import (
    DEFAULT_EXCLUDES,
    FileContext,
    Project,
    collect_files,
    find_project_root,
    lint_paths,
)
from .obsreg import write_registry
from .rules import RULES, get_rules

EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant analyzer for the repro codebase: one "
            "scoring kernel, import layering, obs-counter registry, "
            "exception taxonomy, lock discipline, determinism rules"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0 "
             "for code-scanning upload",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="project root (default: nearest ancestor containing src/repro)",
    )
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="IDS", default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--explain", metavar="IDS", default=None,
        help="comma-separated rule IDs whose findings get their full "
             "witness path printed (thread entry -> call chain -> "
             "offending site); text format only",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="run per-file rules only on files modified per git "
             "(staged, unstaged, untracked); project-level rules still "
             "analyze the whole tree",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--write-obs-registry", action="store_true",
        help="regenerate src/repro/obs_registry.py from producer sites "
             "in src/ and exit",
    )
    return parser


def _split(blob: Optional[str]) -> Optional[List[str]]:
    if blob is None:
        return None
    return [part.strip() for part in blob.split(",") if part.strip()]


def changed_files(root: Path) -> Optional[set]:
    """Rel paths of .py files git considers changed: staged, unstaged,
    and untracked. None when git is unavailable (not a repo, no
    binary) — the caller falls back to a full run."""
    import subprocess

    out: set = set()
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "diff", "--name-only", "--cached"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    for cmd in commands:
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        out.update(
            line.strip() for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return out


def _render_text(report, explain_ids) -> str:
    """Text report, with witness blocks appended for --explain rules."""
    text = report.to_text()
    if not explain_ids:
        return text
    blocks = []
    for finding in report.findings:
        if finding.rule in explain_ids and finding.witness:
            blocks.append(f"\n{finding.format()}")
            blocks.append(finding.format_witness())
    if blocks:
        text += "\n" + "\n".join(blocks)
    return text


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    root = find_project_root(Path(args.root) if args.root else None)

    if args.write_obs_registry:
        files = collect_files(["src"], root, DEFAULT_EXCLUDES)
        contexts = [
            FileContext(
                p.resolve().relative_to(root.resolve()).as_posix(),
                p.read_text(),
                path=p,
            )
            for p in files
        ]
        target = write_registry(Project(root, contexts))
        print(f"wrote obs registry to {target}")
        return 0

    try:
        rules = get_rules(select=_split(args.select), ignore=_split(args.ignore))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    restrict = None
    if args.changed:
        restrict = changed_files(root)
        if restrict is None:
            print(
                "warning: git unavailable, --changed falls back to a "
                "full run",
                file=sys.stderr,
            )

    report = lint_paths(args.paths, root=root, rules=rules, restrict=restrict)
    if report.files_checked == 0 and restrict is None:
        print(f"error: no python files found under {args.paths}", file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        payload = report.to_json()
    elif args.format == "sarif":
        payload = report.to_sarif()
    else:
        payload = _render_text(report, set(_split(args.explain) or ()))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote lint report to {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0 if report.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
