"""Obs-counter registry: scan producer sites, (re)generate the module.

The registry (`src/repro/obs_registry.py`) is *generated* from the
counter/span names actually produced in ``src/`` — literal first
arguments of ``obs.incr(...)`` / ``obs.span(...)`` — plus the two
counters the fused :func:`repro.obs.record_kernel` fast path bumps by
direct dict access. Rule ``RL003`` then checks two directions:

* every literal name at any producer *or consumer* site (``obs.incr``,
  ``obs.counter``, ``obs.span``, and ``snapshot["counters"]["…"]`` /
  ``["timers"]["…"]`` subscripts) must be declared in the registry —
  a typo'd name silently records or reads nothing, which is exactly
  the failure class the rule exists to catch;
* the registry must equal the scanned producer set — adding a counter
  without regenerating (``python -m repro.lint --write-obs-registry``)
  is a finding, so the checked-in registry diff is always reviewed.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Set, Tuple

from .engine import FileContext, Project

__all__ = [
    "RECORD_KERNEL_COUNTERS",
    "REGISTRY_REL",
    "scan_producers",
    "generate_registry_source",
    "write_registry",
]

#: Counters produced by ``repro.obs.record_kernel`` via direct dict
#: writes (the fused fast path has no ``obs.incr`` call to scan).
RECORD_KERNEL_COUNTERS = ("distance.kernel_calls", "distance.evaluations")

REGISTRY_REL = "src/repro/obs_registry.py"

_HEADER = '''"""Registry of every obs counter and span name (GENERATED).

Regenerate with ``python -m repro.lint --write-obs-registry`` whenever a
producer site is added or removed; the RL003 lint rule fails if this
file is stale or if any literal counter/span name used in ``src/`` or
``tests/`` is not declared here. See ``docs/static-analysis.md``.
"""

'''


def obs_call_name(node: ast.Call) -> Optional[Tuple[str, Optional[str]]]:
    """``(method, literal-name-or-None)`` if ``node`` is an obs call.

    Recognizes ``obs.incr/counter/span`` attribute calls and bare
    ``incr/counter/span`` names (the ``from repro import obs`` idiom is
    universal in this repo, but fixtures may import the functions).
    Returns None for calls that are not obs API; the literal slot is
    None when the first argument is not a string constant (dynamic
    names, e.g. the worker-counter merge loop, are out of scope).
    """
    func = node.func
    method = None
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "obs"
        and func.attr in ("incr", "counter", "span")
    ):
        method = func.attr
    if method is None:
        return None
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
        node.args[0].value, str
    ):
        return method, node.args[0].value
    return method, None


def snapshot_subscript_name(node: ast.Subscript) -> Optional[Tuple[str, str]]:
    """``("counters"|"timers", name)`` for ``x["counters"]["name"]``."""
    outer_key = _const_str(node.slice)
    if outer_key is None:
        return None
    inner = node.value
    if not isinstance(inner, ast.Subscript):
        return None
    kind = _const_str(inner.slice)
    if kind in ("counters", "timers"):
        return kind, outer_key
    return None


def _const_str(node) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def scan_producers(contexts: Iterable[FileContext]) -> Tuple[Set[str], Set[str]]:
    """(counters, spans) produced by literal obs calls in ``src/``."""
    counters: Set[str] = set(RECORD_KERNEL_COUNTERS)
    spans: Set[str] = set()
    for ctx in contexts:
        if not ctx.in_src() or ctx.tree is None:
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            hit = obs_call_name(node)
            if hit is None or hit[1] is None:
                continue
            method, name = hit
            if method == "incr":
                counters.add(name)
            elif method == "span":
                spans.add(name)
    return counters, spans


def generate_registry_source(counters: Set[str], spans: Set[str]) -> str:
    lines = [_HEADER]
    lines.append("COUNTERS = (\n")
    for name in sorted(counters):
        lines.append(f"    {name!r},\n")
    lines.append(")\n\nSPANS = (\n")
    for name in sorted(spans):
        lines.append(f"    {name!r},\n")
    lines.append(")\n")
    return "".join(lines)


def write_registry(project: Project) -> Path:
    """Regenerate ``src/repro/obs_registry.py`` from producer sites."""
    counters, spans = scan_producers(project.contexts)
    target = project.root / REGISTRY_REL
    target.write_text(generate_registry_source(counters, spans))
    return target


def declared_names(project: Project) -> Optional[Tuple[Set[str], Set[str]]]:
    """(counters, spans) declared in the registry module.

    Parsed from the registry file under the project root (not imported:
    lint must see the tree being linted, not the installed package).
    Returns None when no registry file exists there.
    """
    path = project.root / REGISTRY_REL
    if not path.exists():
        return None
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError:
        return None
    found = {"COUNTERS": set(), "SPANS": set()}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in found:
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    for elt in node.value.elts:
                        value = _const_str(elt)
                        if value is not None:
                            found[target.id].add(value)
    return found["COUNTERS"], found["SPANS"]
