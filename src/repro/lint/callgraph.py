"""Project-wide call graph + thread-entry inference for repro.lint.

The concurrency rules (RL009-RL011) reason *interprocedurally*: whether
``StreamingDetector._drift_statistic`` runs with the lock held depends
on who calls it, and whether an attribute is racy depends on which
threads can reach the function touching it. This module builds the
static approximation both analyses share:

* a :class:`FunctionInfo` per function/method in the linted tree, keyed
  by qualified name ``<module>.<Class>.<method>`` / ``<module>.<func>``;
* call edges, resolved for the call shapes this codebase actually uses:

  - ``self.x()``         -> a method of the same class (or a base class
                            defined in the linted tree);
  - ``cls.x()`` / ``Klass.x()`` -> same, for classmethod-style calls;
  - ``f()``              -> a module-level function of the same module,
                            or one imported via ``from .mod import f``;
  - ``mod.f()``          -> through an ``import .. as mod`` alias;
  - ``obj.m()``          -> when ``obj`` is an attribute assigned from a
                            class constructor in the linted tree
                            (``self.batcher = ScoreBatcher(...)`` makes
                            ``self.batcher.close()`` resolve to
                            ``ScoreBatcher.close``);

* inferred **thread entry points** — the places a new thread of control
  starts executing project code:

  - ``threading.Thread(target=f)`` (and ``target=self.m``);
  - ``fork_workers(n, worker)`` — each forked child runs ``worker``;
  - ``map_threaded(fn, ...)`` / ``map_sharded(fn, ...)`` pool workers;
  - ``do_GET`` / ``do_POST`` (and the stdlib hook methods ``handle``,
    ``finish_request``) of classes derived from
    ``BaseHTTPRequestHandler`` — a ``ThreadingHTTPServer`` runs each
    request handler on its own thread;
  - the *main* thread: public module-level functions of surface modules
    are not entries by themselves (that would make everything
    bi-threaded); instead the rules treat "main" as the entry for any
    function callers outside the graph can reach — see
    :meth:`CallGraph.entries_reaching`.

Known unsoundness (documented in docs/static-analysis.md): dynamic
dispatch through ``getattr``/dicts, callables passed through data
structures, and monkey-patching are invisible; the graph is a
best-effort over-approximation of *reachability* and an
under-approximation of *call targets*, tuned so the three rules stay
high-signal on this tree.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, Project

__all__ = ["FunctionInfo", "ThreadEntry", "CallSite", "CallGraph", "build_call_graph"]

#: Methods of a BaseHTTPRequestHandler subclass that the stdlib server
#: invokes on a fresh per-request thread (ThreadingHTTPServer).
_HANDLER_ENTRY_METHODS = ("do_GET", "do_POST", "do_PUT", "do_DELETE", "handle")

#: Base-class names that mark a request handler / threaded server.
_HANDLER_BASES = ("BaseHTTPRequestHandler", "ThreadingHTTPServer")

#: Pool fan-out helpers whose first callable argument runs on worker
#: threads/processes (repro.core.parallel).
_POOL_FANOUT = {"map_threaded": 0, "map_sharded": 0, "fork_workers": 1}


class FunctionInfo:
    """One function or method in the linted tree."""

    __slots__ = (
        "qualname", "module", "cls", "name", "node", "ctx", "is_method",
    )

    def __init__(self, qualname, module, cls, name, node, ctx):
        self.qualname = qualname          # repro.serve.OnlineScorer.score_new
        self.module = module              # repro.serve
        self.cls = cls                    # OnlineScorer or None
        self.name = name                  # score_new
        self.node = node                  # the ast.FunctionDef
        self.ctx = ctx                    # FileContext it lives in

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname}>"


class ThreadEntry:
    """An inferred start of a thread of control."""

    __slots__ = ("kind", "label", "target", "node", "ctx")

    def __init__(self, kind, label, target, node, ctx):
        self.kind = kind      # 'thread' | 'fork' | 'pool' | 'handler'
        self.label = label    # human name, e.g. "Thread(repro-serve-batcher)"
        self.target = target  # qualname of the entry function
        self.node = node      # AST node that creates the thread
        self.ctx = ctx

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<ThreadEntry {self.label} -> {self.target}>"


class CallSite:
    """One resolved call edge ``caller -> callee``."""

    __slots__ = ("caller", "callee", "node")

    def __init__(self, caller: str, callee: str, node: ast.AST):
        self.caller = caller
        self.callee = callee
        self.node = node


class CallGraph:
    """Functions, resolved call edges, and inferred thread entries."""

    def __init__(self):
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qualname -> [CallSite, ...]
        self.calls: Dict[str, List[CallSite]] = {}
        #: callee qualname -> [CallSite, ...] (the reverse index)
        self.callers: Dict[str, List[CallSite]] = {}
        self.entries: List[ThreadEntry] = []
        #: class qualname (module.Class) -> base class qualnames/names
        self.class_bases: Dict[str, List[str]] = {}

    # -- construction helpers (used by the builder) -----------------------

    def add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info

    def add_call(self, caller: str, callee: str, node: ast.AST) -> None:
        site = CallSite(caller, callee, node)
        self.calls.setdefault(caller, []).append(site)
        self.callers.setdefault(callee, []).append(site)

    # -- queries -----------------------------------------------------------

    def reachable_from(self, qualname: str) -> Set[str]:
        """Every function reachable from ``qualname`` along call edges."""
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self.calls.get(cur, ()):
                if site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def entries_reaching(self, qualname: str) -> List[ThreadEntry]:
        """The thread entries from which ``qualname`` is reachable."""
        out = []
        for entry in self.entries:
            if entry.target in self.functions:
                if qualname in self.reachable_from(entry.target):
                    out.append(entry)
        return out

    def call_path(self, src: str, dst: str) -> Optional[List[CallSite]]:
        """A shortest call-site chain ``src -> ... -> dst`` (BFS), or
        None when dst is unreachable. Empty list when src == dst."""
        if src == dst:
            return []
        from collections import deque

        prev: Dict[str, CallSite] = {}
        q = deque([src])
        seen = {src}
        while q:
            cur = q.popleft()
            for site in self.calls.get(cur, ()):
                if site.callee in seen:
                    continue
                prev[site.callee] = site
                if site.callee == dst:
                    chain: List[CallSite] = []
                    node = dst
                    while node != src:
                        site = prev[node]
                        chain.append(site)
                        node = site.caller
                    chain.reverse()
                    return chain
                seen.add(site.callee)
                q.append(site.callee)
        return None

    def methods_of(self, class_qual: str) -> List[FunctionInfo]:
        prefix = class_qual + "."
        return [
            info for qual, info in self.functions.items()
            if qual.startswith(prefix) and "." not in qual[len(prefix):]
        ]


# ---------------------------------------------------------------------------
# builder


class _ModuleIndex:
    """Per-module name resolution state."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.module = ctx.module or _pseudo_module(ctx.rel)
        #: local name -> qualname of an imported function/class
        self.imported: Dict[str, str] = {}
        #: local alias -> imported module dotted name
        self.module_aliases: Dict[str, str] = {}
        #: class name defined here -> class qualname
        self.classes: Dict[str, str] = {}
        #: module-level function name -> qualname
        self.functions: Dict[str, str] = {}


def _pseudo_module(rel: str) -> str:
    """A module key for files outside ``src/`` (tests, fixtures): the
    posix path with ``/`` -> ``.`` and no ``.py`` — unique per file, so
    cross-file resolution simply never matches for them."""
    out = rel[:-3] if rel.endswith(".py") else rel
    return out.replace("/", ".")


def _resolve_import_base(ctx: FileContext, node: ast.ImportFrom) -> str:
    module = ctx.module or _pseudo_module(ctx.rel)
    if node.level == 0:
        return node.module or ""
    is_pkg = ctx.rel.endswith("__init__.py")
    parts = module.split(".")
    drop = node.level - 1 if is_pkg else node.level
    base = ".".join(parts[: max(len(parts) - drop, 0)])
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def build_call_graph(project: Project) -> CallGraph:
    """Two passes: index every function/class, then resolve call sites
    and thread-creation sites against the index."""
    graph = CallGraph()
    indexes: List[_ModuleIndex] = []

    # -- pass 1: declarations ---------------------------------------------
    for ctx in project.contexts:
        if ctx.tree is None:
            continue
        idx = _ModuleIndex(ctx)
        indexes.append(idx)
        for node in ctx.tree.body:
            _index_toplevel(graph, idx, node)
    by_qual = graph.functions

    # a global (module, name) index for `from X import f` resolution
    module_funcs: Dict[Tuple[str, str], str] = {}
    module_classes: Dict[Tuple[str, str], str] = {}
    for idx in indexes:
        for name, qual in idx.functions.items():
            module_funcs[(idx.module, name)] = qual
        for name, qual in idx.classes.items():
            module_classes[(idx.module, name)] = qual

    for idx in indexes:
        for node in ast.walk(idx.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    idx.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_import_base(idx.ctx, node)
                for alias in node.names:
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    if (base, alias.name) in module_funcs:
                        idx.imported[local] = module_funcs[(base, alias.name)]
                    elif (base, alias.name) in module_classes:
                        idx.imported[local] = module_classes[(base, alias.name)]
                    else:
                        # might be a module import: `from repro import obs`
                        idx.module_aliases.setdefault(local, target)

    # -- pass 2: type facts (attribute + return types), to a fixpoint -----
    # ``self.scorer.score_new()`` only resolves once we know
    # ``_ModelHTTPServer.scorer`` holds an ``OnlineScorer`` — which we
    # learn from ``new_scorer = OnlineScorer.from_path(...)`` followed by
    # ``self.scorer = new_scorer``. Attribute types feed local types and
    # vice versa, so iterate the cheap collection to a fixpoint.
    types = _TypeFacts(graph, module_funcs, module_classes)
    for _ in range(4):
        if not types.collect_round(indexes):
            break

    # -- pass 3: call edges + thread entries ------------------------------
    builder = _EdgeBuilder(graph, module_funcs, module_classes, types)
    for idx in indexes:
        builder.run(idx)
    graph.types = types          # downstream analyses reuse the facts
    graph.module_classes = module_classes
    graph.indexes = {idx.ctx.rel: idx for idx in indexes}
    return graph


class _TypeFacts:
    """Flow-insensitive class-valued type facts.

    ``attr_types[(cls_qual, attr)] -> cls_qual`` and
    ``return_types[fn_qual] -> cls_qual`` for the assignment shapes the
    codebase uses: direct construction, classmethod constructors
    (``Klass.from_x(...)`` is assumed to build a ``Klass``), annotated
    class attributes, and simple local-variable forwarding.
    """

    def __init__(self, graph, module_funcs, module_classes):
        self.graph = graph
        self.module_funcs = module_funcs
        self.module_classes = module_classes
        self.attr_types: Dict[Tuple[str, str], str] = {}
        self.return_types: Dict[str, str] = {}

    def collect_round(self, indexes: Sequence[_ModuleIndex]) -> bool:
        before = (len(self.attr_types), len(self.return_types))
        for idx in indexes:
            for node in idx.ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    cls_qual = f"{idx.module}.{node.name}"
                    self._collect_class(idx, node, cls_qual)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_function(idx, node, None,
                                           f"{idx.module}.{node.name}")
        return (len(self.attr_types), len(self.return_types)) != before

    def _collect_class(self, idx, cls: ast.ClassDef, cls_qual: str) -> None:
        for sub in cls.body:
            if isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                ann_cls = self._annotation_class(idx, sub.annotation)
                if ann_cls:
                    self.attr_types[(cls_qual, sub.target.id)] = ann_cls
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(idx, sub, cls_qual,
                                       f"{cls_qual}.{sub.name}")

    def _collect_function(self, idx, fn, cls_qual, fn_qual) -> None:
        locals_t: Dict[str, str] = {}
        if cls_qual:
            locals_t["self"] = cls_qual
            locals_t["cls"] = cls_qual
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if arg.annotation is not None:
                ann = self._annotation_class(idx, arg.annotation)
                if ann:
                    locals_t[arg.arg] = ann
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                val_cls = self.expr_class(idx, node.value, locals_t)
                if val_cls is None:
                    continue
                if isinstance(t, ast.Name):
                    locals_t[t.id] = val_cls
                elif isinstance(t, ast.Attribute):
                    base_cls = self.expr_class(idx, t.value, locals_t)
                    if base_cls:
                        self.attr_types[(base_cls, t.attr)] = val_cls
            elif isinstance(node, ast.Return) and node.value is not None:
                val_cls = self.expr_class(idx, node.value, locals_t)
                if val_cls:
                    self.return_types.setdefault(fn_qual, val_cls)

    def _annotation_class(self, idx, node) -> Optional[str]:
        # Plain names and strings only ("OnlineScorer", _ModelHTTPServer);
        # Optional[...] / quoted forward refs in the simple form.
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        else:
            name = _tail_name(node)
        if name is None:
            return None
        if name in idx.classes:
            return idx.classes[name]
        imported = idx.imported.get(name)
        if imported in self.graph.class_bases:
            return imported
        return None

    def expr_class(self, idx, node, locals_t: Dict[str, str]) -> Optional[str]:
        """The class an expression evaluates to, when inferable."""
        if isinstance(node, ast.Name):
            return locals_t.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.expr_class(idx, node.value, locals_t)
            if base is None:
                return None
            return self.lookup_attr(base, node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            name = _tail_name(func)
            if name is None:
                return None
            # direct construction: Klass(...)
            if name in idx.classes:
                return idx.classes[name]
            imported = idx.imported.get(name)
            if imported in self.graph.class_bases:
                return imported
            if isinstance(func, ast.Attribute):
                # classmethod-constructor heuristic: Klass.cm(...) -> Klass
                owner = None
                if isinstance(func.value, ast.Name):
                    owner = (
                        idx.classes.get(func.value.id)
                        or idx.imported.get(func.value.id)
                    )
                if owner in self.graph.class_bases:
                    return owner
            # a call to a function with an inferred return type
            if isinstance(func, ast.Name):
                qual = idx.functions.get(func.id) or idx.imported.get(func.id)
                if qual:
                    return self.return_types.get(qual)
        return None

    def function_locals(self, idx, fn, cls_qual) -> Dict[str, str]:
        """Class-valued local-variable types inside ``fn`` (including
        ``self``/``cls`` and annotated parameters). Two rounds so a
        later assignment can feed an earlier alias flow-insensitively."""
        locals_t: Dict[str, str] = {}
        if cls_qual:
            locals_t["self"] = cls_qual
            locals_t["cls"] = cls_qual
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if arg.annotation is not None:
                ann = self._annotation_class(idx, arg.annotation)
                if ann:
                    locals_t[arg.arg] = ann
        for _ in range(2):
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    t = node.targets[0]
                    if isinstance(t, ast.Name):
                        val_cls = self.expr_class(idx, node.value, locals_t)
                        if val_cls:
                            locals_t[t.id] = val_cls
        return locals_t

    def lookup_attr(self, cls_qual: str, attr: str) -> Optional[str]:
        """attr type on cls_qual, walking linted base classes."""
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            hit = self.attr_types.get((cur, attr))
            if hit:
                return hit
            mod = cur.rsplit(".", 1)[0]
            for base in self.graph.class_bases.get(cur, ()):
                base_qual = self.module_classes.get((mod, base))
                if base_qual:
                    stack.append(base_qual)
        return None


def _index_toplevel(graph: CallGraph, idx: _ModuleIndex, node: ast.AST) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{idx.module}.{node.name}"
        idx.functions[node.name] = qual
        graph.add_function(
            FunctionInfo(qual, idx.module, None, node.name, node, idx.ctx)
        )
    elif isinstance(node, ast.ClassDef):
        cls_qual = f"{idx.module}.{node.name}"
        idx.classes[node.name] = cls_qual
        bases = []
        for base in node.bases:
            name = _tail_name(base)
            if name:
                bases.append(name)
        graph.class_bases[cls_qual] = bases
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{cls_qual}.{sub.name}"
                graph.add_function(
                    FunctionInfo(qual, idx.module, node.name, sub.name, sub, idx.ctx)
                )


def _local_nodes(fn) -> Iterable[ast.AST]:
    """Every node lexically inside ``fn`` *excluding* bodies of nested
    function definitions (those are walked as their own functions).
    Lambda bodies stay included — they run in the enclosing scope's
    lock context often enough (callbacks fired inline) that attributing
    them outward is the safer approximation."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _tail_name(node) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _EdgeBuilder:
    """Resolves calls and thread entries for one module at a time."""

    def __init__(self, graph, module_funcs, module_classes, types: _TypeFacts):
        self.graph = graph
        self.module_funcs = module_funcs
        self.module_classes = module_classes
        self.types = types

    # -- entry -------------------------------------------------------------

    def run(self, idx: _ModuleIndex) -> None:
        self.idx = idx
        ctx = idx.ctx
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{idx.module}.{node.name}"
                self._walk_function(qual, None, node)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{idx.module}.{node.name}"
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._walk_function(
                            f"{cls_qual}.{sub.name}", cls_qual, sub
                        )
                self._maybe_handler_entries(node, cls_qual)

    def _maybe_handler_entries(self, cls: ast.ClassDef, cls_qual: str) -> None:
        """HTTP request handlers: every ``do_*`` of a handler subclass
        runs on its own server thread."""
        if not self._derives_from_handler(cls_qual):
            return
        for sub in cls.body:
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub.name in _HANDLER_ENTRY_METHODS
            ):
                self.graph.entries.append(
                    ThreadEntry(
                        "handler",
                        f"http-handler {cls.name}.{sub.name}",
                        f"{cls_qual}.{sub.name}",
                        sub,
                        self.idx.ctx,
                    )
                )

    def _derives_from_handler(self, cls_qual: str) -> bool:
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for base in self.graph.class_bases.get(cur, ()):
                if base in _HANDLER_BASES:
                    return True
                # follow bases defined in the linted tree (by bare name
                # within the same module, or resolved qualname)
                mod = cur.rsplit(".", 1)[0]
                qual = self.module_classes.get((mod, base))
                if qual:
                    stack.append(qual)
        return False

    # -- function bodies ---------------------------------------------------

    def _walk_function(self, qual, cls_qual, fn, outer_funcs=None) -> None:
        locals_t = self.types.function_locals(self.idx, fn, cls_qual)
        # nested defs (`def worker(): ...` inside run_fleet) are functions
        # in their own right: fork/Thread targets resolve to them, and
        # their bodies are attributed to *them*, not the enclosing scope.
        local_funcs = dict(outer_funcs or {})
        nested: List[ast.AST] = []
        for node in _local_nodes(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nq = f"{qual}.{node.name}"
                local_funcs[node.name] = nq
                self.graph.add_function(
                    FunctionInfo(nq, self.idx.module, None, node.name, node,
                                 self.idx.ctx)
                )
                nested.append(node)
        self._local_funcs = local_funcs
        for node in _local_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            self._maybe_thread_entry(node, cls_qual, locals_t)
            callee = self._resolve_call(node, cls_qual, locals_t)
            if callee is not None:
                self.graph.add_call(qual, callee, node)
        for node in nested:
            self._walk_function(f"{qual}.{node.name}", cls_qual, node,
                                local_funcs)
        self._local_funcs = outer_funcs or {}

    def _resolve_call(self, call: ast.Call, cls_qual, locals_t) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in getattr(self, "_local_funcs", {}):
                return self._local_funcs[name]
            if name in self.idx.functions:
                return self.idx.functions[name]
            if name in self.idx.imported:
                target = self.idx.imported[name]
                # a class constructor edge resolves to __init__ when we
                # have it (so "held while constructing" propagates)
                if target in self.graph.class_bases:
                    init = target + ".__init__"
                    return init if init in self.graph.functions else None
                return target if target in self.graph.functions else None
            if name in self.idx.classes:
                init = self.idx.classes[name] + ".__init__"
                return init if init in self.graph.functions else None
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            # mod.f() via an import alias
            mod = self.idx.module_aliases.get(base.id)
            if mod is not None:
                qual = self.module_funcs.get((mod, func.attr))
                if qual:
                    return qual
            # Klass.m() on a class defined/imported here
            target_cls = (
                self.idx.classes.get(base.id) or self.idx.imported.get(base.id)
            )
            if target_cls and target_cls in self.graph.class_bases:
                return self._resolve_method(target_cls, func.attr)
        # anything with an inferable class: self.m(), self.attr.m(),
        # typed locals (scorer = self.server.scorer; scorer.score_new()),
        # chained attributes (self.server.scorer.score_new()).
        base_cls = self.types.expr_class(self.idx, base, locals_t)
        if base_cls:
            return self._resolve_method(base_cls, func.attr)
        return None

    def _resolve_method(self, cls_qual: str, method: str) -> Optional[str]:
        """Look up ``method`` on ``cls_qual``, walking linted base classes."""
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            qual = f"{cur}.{method}"
            if qual in self.graph.functions:
                return qual
            mod = cur.rsplit(".", 1)[0]
            for base in self.graph.class_bases.get(cur, ()):
                base_qual = self.module_classes.get((mod, base))
                if base_qual:
                    stack.append(base_qual)
        return None

    # -- thread entries ----------------------------------------------------

    def _maybe_thread_entry(self, call: ast.Call, cls_qual, locals_t) -> None:
        name = _tail_name(call.func)
        if name == "Thread":
            target = self._kwarg(call, "target")
            if target is None:
                return
            qual = self._resolve_callable_ref(target, cls_qual, locals_t)
            if qual is None:
                return
            label = self._kwarg_str(call, "name") or qual.rsplit(".", 1)[-1]
            self.graph.entries.append(
                ThreadEntry("thread", f"Thread({label})", qual, call, self.idx.ctx)
            )
        elif name in _POOL_FANOUT:
            pos = _POOL_FANOUT[name]
            arg = None
            if len(call.args) > pos:
                arg = call.args[pos]
            else:
                arg = self._kwarg(call, "target") or self._kwarg(call, "fn")
            if arg is None:
                return
            qual = self._resolve_callable_ref(arg, cls_qual, locals_t)
            if qual is None:
                return
            kind = "fork" if name == "fork_workers" else "pool"
            self.graph.entries.append(
                ThreadEntry(kind, f"{name}({qual.rsplit('.', 1)[-1]})", qual,
                            call, self.idx.ctx)
            )

    def _resolve_callable_ref(self, node, cls_qual, locals_t) -> Optional[str]:
        """A callable *reference* (not a call): ``f``, ``self.m``,
        ``mod.f``. Lambdas resolve to the function they call when the
        body is a single call (the ``lambda: self.scorer`` idiom)."""
        if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
            return self._resolve_call(node.body, cls_qual, locals_t)
        if isinstance(node, ast.Name):
            name = node.id
            if name in getattr(self, "_local_funcs", {}):
                return self._local_funcs[name]
            if name in self.idx.functions:
                return self.idx.functions[name]
            target = self.idx.imported.get(name)
            if target in self.graph.functions:
                return target
            return None
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                mod = self.idx.module_aliases.get(base.id)
                if mod is not None:
                    qual = self.module_funcs.get((mod, node.attr))
                    if qual:
                        return qual
            base_cls = self.types.expr_class(self.idx, base, locals_t)
            if base_cls:
                return self._resolve_method(base_cls, node.attr)
        return None

    @staticmethod
    def _kwarg(call: ast.Call, name: str):
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    @staticmethod
    def _kwarg_str(call: ast.Call, name: str) -> Optional[str]:
        node = _EdgeBuilder._kwarg(call, name)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None
