"""Analyzer core: file/project contexts, suppressions, rule runner.

The engine itself is dependency-free (stdlib ``ast`` + ``tokenize``
only — it parses the tree, it never imports it), so analysis cost is
one parse per file. Every rule sees two artifacts:

* a :class:`FileContext` per file — AST (with parent links), raw
  source, the comment map, and the parsed ``# reprolint:`` directives;
* the :class:`Project` — all contexts of the run plus the project
  root, for whole-tree rules (registry staleness, kernel presence).

Findings carry ``(rule id, path, line, col, message)``; the runner
drops findings suppressed by a same-line ``# reprolint: disable=RLxxx``
or a file-level ``# reprolint: disable-file=RLxxx`` directive and
reports the rest sorted by location.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = [
    "Finding",
    "FileContext",
    "LintReport",
    "Project",
    "Rule",
    "find_project_root",
    "lint_paths",
    "lint_source",
]

#: Directories never collected by path walks (fixture snippets contain
#: deliberate violations; caches are noise).
DEFAULT_EXCLUDES = ("__pycache__", "tests/lint/fixtures")

_DISABLE_LINE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``witness`` (concurrency rules only) is the interprocedural
    evidence trail: thread entry, call chain, offending access —
    rendered by ``repro-lof lint --explain RLxxx``.
    """

    rule: str
    path: str  # project-root-relative posix path
    line: int
    col: int
    message: str
    witness: tuple = ()

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def format_witness(self) -> str:
        return "\n".join("    " + step for step in self.witness)

    def to_dict(self) -> Dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.witness:
            out["witness"] = list(self.witness)
        return out


class FileContext:
    """Everything a rule may ask about one source file."""

    def __init__(self, rel: str, text: str, path: Optional[Path] = None):
        self.rel = rel  # posix path relative to the project root
        self.path = path
        self.text = text
        self.module = module_name_for(rel)
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        if self.tree is not None:
            _link_parents(self.tree)
        #: {lineno: full comment text} — ast drops comments, rules
        #: (suppressions, lock-guarded markers) need them.
        self.comments: Dict[int, str] = {}
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        self._scan_comments()

    # -- comments & suppressions ------------------------------------------

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                line = tok.start[0]
                self.comments[line] = self.comments.get(line, "") + tok.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for line, comment in self.comments.items():
            m = _DISABLE_FILE.search(comment)
            if m:
                self.file_disables.update(_split_ids(m.group(1)))
                continue
            m = _DISABLE_LINE.search(comment)
            if m:
                self.line_disables.setdefault(line, set()).update(
                    _split_ids(m.group(1))
                )

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_disables:
            return True
        return rule_id in self.line_disables.get(line, set())

    # -- convenience -------------------------------------------------------

    def in_src(self) -> bool:
        return self.rel.startswith("src/")

    def in_tests(self) -> bool:
        return self.rel.startswith("tests/")

    def finding(self, rule_id: str, node, message: str, witness=()) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule_id, self.rel, line, col, message, tuple(witness))


class Project:
    """The full set of files in one lint run."""

    def __init__(self, root: Path, contexts: Sequence[FileContext]):
        self.root = root
        self.contexts = list(contexts)
        self._by_module = {
            ctx.module: ctx for ctx in self.contexts if ctx.module
        }
        self._by_rel = {ctx.rel: ctx for ctx in self.contexts}
        self._cache: Dict[str, object] = {}

    def module(self, name: str) -> Optional[FileContext]:
        return self._by_module.get(name)

    def rel(self, rel: str) -> Optional[FileContext]:
        return self._by_rel.get(rel)

    def cached(self, key: str, build):
        """Build-once memo for expensive whole-project artifacts (the
        call graph + lock model are shared by RL009/RL010/RL011)."""
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]


class Rule:
    """Base class: subclasses set ``id``/``name``/``summary`` and
    override :meth:`check_file` and/or :meth:`check_project`."""

    id: str = "RL000"
    name: str = "base"
    summary: str = ""

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


@dataclass
class LintReport:
    """Outcome of a run: surviving findings plus suppression stats."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_text(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(
            f"repro.lint: {len(self.findings)} finding(s), "
            f"{self.suppressed} suppressed, {self.files_checked} file(s), "
            f"rules {', '.join(self.rules_run)}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": self.suppressed,
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
            },
            indent=2,
            sort_keys=True,
        )

    def to_sarif(self) -> str:
        """SARIF 2.1.0 — the schema GitHub code scanning ingests, so CI
        findings annotate PR diffs. Columns are 1-based in SARIF."""
        from .rules import RULES

        rule_meta = []
        for rule_id in self.rules_run:
            rule = RULES.get(rule_id)
            rule_meta.append(
                {
                    "id": rule_id,
                    "name": rule.name if rule else rule_id,
                    "shortDescription": {
                        "text": rule.summary if rule else rule_id
                    },
                }
            )
        results = []
        for f in self.findings:
            result = {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
            if f.witness:
                result["message"]["text"] += "\n" + "\n".join(f.witness)
            results.append(result)
        doc = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro.lint",
                            "informationUri": (
                                "docs/static-analysis.md"
                            ),
                            "rules": rule_meta,
                        }
                    },
                    "results": results,
                    "originalUriBaseIds": {
                        "SRCROOT": {"uri": "file:///"}
                    },
                }
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# helpers


def _split_ids(blob: str) -> Set[str]:
    return {part.strip() for part in blob.split(",") if part.strip()}


def _link_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._reprolint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_reprolint_parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = parent_of(cur)
    return None


def module_name_for(rel: str) -> Optional[str]:
    """Dotted module name for files under ``src/`` (None elsewhere)."""
    if not rel.startswith("src/"):
        return None
    parts = Path(rel).parts[1:]  # drop "src"
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts = list(parts)
    last = parts.pop()[: -len(".py")]
    if last != "__init__":
        parts.append(last)
    return ".".join(parts) if parts else None


def find_project_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor containing ``src/repro`` (the repo layout)."""
    cur = (start or Path.cwd()).resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return cur


def _is_excluded(rel: str, excludes: Sequence[str]) -> bool:
    parts = rel.split("/")
    for pattern in excludes:
        if "/" in pattern:
            if rel == pattern or rel.startswith(pattern + "/"):
                return True
        elif pattern in parts:
            return True
    return False


def collect_files(
    paths: Sequence, root: Path, excludes: Sequence[str] = DEFAULT_EXCLUDES
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: Set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if not p.is_absolute():
            p = root / p
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                rel = _rel_to(sub, root)
                if not _is_excluded(rel, excludes):
                    out.add(sub.resolve())
        elif p.suffix == ".py" and p.exists():
            # Explicitly named files bypass the default excludes — that
            # is how the fixture suite lints its known-bad snippets.
            out.add(p.resolve())
    return sorted(out)


def _rel_to(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# ---------------------------------------------------------------------------
# runners


def _run(
    project: Project,
    rules: Sequence[Rule],
    restrict: Optional[Set[str]] = None,
) -> LintReport:
    """Run ``rules`` over ``project``.

    ``restrict`` (for ``--changed``) limits *per-file* checks to the
    named rel paths; project-level checks (call graph, registry
    currency, concurrency rules) always see — and may report on — the
    whole tree, since a change in one file can break an invariant whose
    witness lives in another.
    """
    report = LintReport(
        files_checked=sum(
            1 for ctx in project.contexts
            if restrict is None or ctx.rel in restrict
        ),
        rules_run=[r.id for r in rules],
    )
    raw: List[Finding] = []
    for ctx in project.contexts:
        if restrict is not None and ctx.rel not in restrict:
            continue
        if ctx.syntax_error is not None:
            raw.append(
                Finding(
                    "RL000",
                    ctx.rel,
                    ctx.syntax_error.lineno or 1,
                    ctx.syntax_error.offset or 0,
                    f"file does not parse: {ctx.syntax_error.msg}",
                )
            )
            continue
        for rule in rules:
            raw.extend(rule.check_file(ctx, project))
    for rule in rules:
        raw.extend(rule.check_project(project))
    for finding in raw:
        ctx = project.rel(finding.path)
        if (
            finding.rule != "RL000"
            and ctx is not None
            and ctx.is_suppressed(finding.rule, finding.line)
        ):
            report.suppressed += 1
        else:
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def lint_paths(
    paths: Sequence,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    restrict: Optional[Set[str]] = None,
) -> LintReport:
    """Lint files/directories (relative paths resolve against ``root``).

    ``restrict`` limits per-file rules to those rel paths while
    project-level rules still analyze everything collected (see
    :func:`_run`)."""
    from .rules import get_rules

    root = find_project_root(root) if root is None else Path(root)
    files = collect_files(paths, root, excludes)
    contexts = []
    for path in files:
        text = path.read_text()
        contexts.append(FileContext(_rel_to(path, root), text, path=path))
    project = Project(root, contexts)
    return _run(
        project, list(rules) if rules is not None else get_rules(), restrict
    )


def lint_source(
    text: str,
    rel: str = "src/repro/_snippet.py",
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint an in-memory snippet as if it lived at ``rel``.

    The fixture tests use this to exercise each rule on known-good and
    known-bad code without planting violating files in the tree. ``rel`` does nothing
    magic — it just selects which path-scoped rules apply.
    """
    from .rules import get_rules

    root = find_project_root(root) if root is None else Path(root)
    ctx = FileContext(rel, text)
    project = Project(root, [ctx])
    return _run(project, list(rules) if rules is not None else get_rules())
