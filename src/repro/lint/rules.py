"""The rule catalog. Stable IDs; see ``docs/static-analysis.md``.

========  ===================================================================
RL001     one-kernel: scoring arithmetic only in core/scoring.py and the
          registered scorer modules of repro.scorers
RL002     import-layering: index → graph → kernel → surfaces, no upward edges
RL003     obs-registry: every literal counter/span name is declared
RL004     exception-taxonomy: store/serve raise only repro.exceptions types
RL005     lock-discipline: lock-guarded attributes touched only under lock
RL006     wall-clock: no time.time/perf_counter in tests (monotonic: slow-only)
RL007     unseeded-rng: no unseeded/global np.random in src/
RL008     float-equality: no ``==`` on score-like arrays (use the helpers)
RL009     inferred-race: lock-guarded attribute reachable from concurrent
          thread entries with an empty held-set on some path; holds-lock
          annotations are verified against every resolved caller
RL010     lock-order-cycle: acquired-while-holding cycles (deadlock)
RL011     blocking-under-hot-lock: join/wait/subprocess while holding a
          lock the HTTP serving path contends on
========  ===================================================================

Each rule is a :class:`~repro.lint.engine.Rule` subclass; the module
registry ``RULES`` maps IDs to singleton instances, and
:func:`get_rules` filters it for ``--select`` / ``--ignore``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, Finding, Project, Rule, enclosing_function
from . import obsreg

__all__ = ["RULES", "get_rules"]


# ---------------------------------------------------------------------------
# shared AST helpers


def terminal_name(node) -> Optional[str]:
    """Identifier at the tip of a Name/Attribute/Subscript chain."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_targets(ctx: FileContext) -> List[Tuple[ast.AST, str]]:
    """Every import in a ``src/`` module as (node, absolute dotted name).

    Relative imports resolve against the module's package; each
    ``from X import y`` alias yields ``X.y`` (prefix matching downstream
    handles whether ``y`` is a submodule or an attribute).
    """
    if ctx.module is None or ctx.tree is None:
        return []
    is_pkg = ctx.rel.endswith("__init__.py")
    parts = ctx.module.split(".")
    out: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                drop = node.level - 1 if is_pkg else node.level
                base = ".".join(parts[: max(len(parts) - drop, 0)])
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                out.append((node, f"{base}.{alias.name}" if base else alias.name))
    return out


# ---------------------------------------------------------------------------
# RL001 — one scoring kernel


class OneKernelRule(Rule):
    id = "RL001"
    name = "one-kernel"
    summary = (
        "scoring arithmetic lives only in core/scoring.py and the "
        "registered scorer modules of repro.scorers "
        "(core/reference.py exempt as the differential oracle)"
    )

    KERNEL = "repro.core.scoring"
    #: Only the kernel (and the naive oracle) may host the reduceat
    #: row-sum primitive; scorer modules must route row reductions
    #: through scoring.row_sums/row_means.
    EXEMPT = ("repro.core.scoring", "repro.core.reference")
    #: Score-ratio divisions are additionally allowed inside the scorer
    #: registry — that is where per-detector arithmetic is *supposed* to
    #: live now — but nowhere else (serve/store/baselines must call in).
    SCORER_PACKAGE = "repro.scorers"
    #: repro.scorers submodules that are infrastructure, not detectors:
    #: the package __init__ and the registry/base-class module. Every
    #: other submodule must register a scorer (see check_project).
    SCORER_INFRA = ("repro.scorers", "repro.scorers.base")

    def _in_scorer_package(self, module: str) -> bool:
        return module == self.SCORER_PACKAGE or module.startswith(
            self.SCORER_PACKAGE + "."
        )

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if ctx.module is None or ctx.tree is None:
            return
        reduceat_ok = ctx.module in self.EXEMPT
        ratio_ok = reduceat_ok or self._in_scorer_package(ctx.module)
        if reduceat_ok and ratio_ok:
            return
        for node in ast.walk(ctx.tree):
            if (
                not reduceat_ok
                and isinstance(node, ast.Attribute)
                and self._is_reduceat(node)
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "np.add.reduceat row-sum kernel outside the scoring "
                    "kernel; route through repro.core.scoring",
                )
            elif (
                not ratio_ok
                and isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Div)
            ):
                label = self._ratio_label(node)
                if label:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{label} reimplements scorer math outside the "
                        "kernel and the repro.scorers registry; call "
                        "repro.core.scoring or a registered scorer",
                    )

    @staticmethod
    def _is_reduceat(node: ast.Attribute) -> bool:
        return (
            node.attr == "reduceat"
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "add"
            and terminal_name(node.value.value) in ("np", "numpy")
        )

    @staticmethod
    def _ratio_label(node: ast.BinOp) -> Optional[str]:
        left = terminal_name(node.left)
        right = terminal_name(node.right)
        if left and right and "lrd" in left.lower() and "lrd" in right.lower():
            return "lrd/lrd ratio"
        if left and right and "pdist" in left.lower() and "pdist" in right.lower():
            return "pdist/pdist PLOF ratio"
        if left and right and "dbar" in left.lower() and (
            "dbar" in right.lower() or "inner" in right.lower()
        ):
            return "dbar/inner LDOF ratio"
        if left == "counts" and right == "sums":
            return "counts/sums lrd division"
        if (
            isinstance(node.left, ast.Call)
            and terminal_name(node.left.func) == "len"
            and node.left.args
            and (terminal_name(node.left.args[0]) or "").lower().startswith("reach")
        ):
            return "len(reach)/sum lrd division"
        return None

    def check_project(self, project: Project) -> Iterable[Finding]:
        # Guard the guard: if scoring.py loses the reduceat row sums the
        # containment checks above pass vacuously.
        ctx = project.module(self.KERNEL)
        if ctx is not None and ctx.tree is not None and not any(
            isinstance(node, ast.Attribute) and self._is_reduceat(node)
            for node in ast.walk(ctx.tree)
        ):
            yield Finding(
                self.id,
                ctx.rel,
                1,
                0,
                "core/scoring.py no longer contains the np.add.reduceat row-sum "
                "kernel — the one-kernel containment rule would pass vacuously",
            )
        # Guard the ratio exemption too: a repro.scorers submodule gets
        # a free pass on ratio math *because* it is a registered
        # detector. A submodule that never calls register() is scoring
        # arithmetic hiding inside the exempt namespace.
        for sctx in project.contexts:
            if sctx.module is None or sctx.tree is None:
                continue
            if not self._in_scorer_package(sctx.module):
                continue
            if sctx.module in self.SCORER_INFRA:
                continue
            if any(
                isinstance(node, ast.Call)
                and terminal_name(node.func) == "register"
                for node in ast.walk(sctx.tree)
            ):
                continue
            yield Finding(
                self.id,
                sctx.rel,
                1,
                0,
                f"{sctx.module} lives in the ratio-exempt repro.scorers "
                "namespace but never calls register(...) — scorer modules "
                "must register their detector or move the math elsewhere",
            )


# ---------------------------------------------------------------------------
# RL002 — import layering


# Most-specific prefix first. Infrastructure (obs, exceptions,
# validation, the fork-pool helper, the generated registry) sits below
# everything; the lint package itself is a surface.
_LAYER_PREFIXES: List[Tuple[str, int]] = [
    ("repro.core.scoring", 3),
    ("repro.core.graph", 2),
    ("repro.core.parallel", 0),
    ("repro.obs_registry", 0),
    ("repro.obs", 0),
    ("repro.exceptions", 0),
    ("repro._validation", 0),
    ("repro.index", 1),
]

_LAYER_NAMES = {0: "infra", 1: "index", 2: "graph", 3: "kernel", 4: "surfaces"}


def layer_of(name: str) -> Optional[int]:
    for prefix, layer in _LAYER_PREFIXES:
        if name == prefix or name.startswith(prefix + "."):
            return layer
    if name == "repro" or name.startswith("repro."):
        return 4
    return None


class ImportLayeringRule(Rule):
    id = "RL002"
    name = "import-layering"
    summary = (
        "index → graph → kernel → surfaces: no module imports a layer "
        "above its own, and repro.core never imports analysis/datasets"
    )

    UPPER_FORBIDDEN_FOR_CORE = ("repro.analysis", "repro.datasets")

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if ctx.module is None:
            return
        own_layer = layer_of(ctx.module)
        if own_layer is None:
            return
        for node, name in import_targets(ctx):
            target_layer = layer_of(name)
            if target_layer is None:
                continue
            if target_layer > own_layer:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{ctx.module} ({_LAYER_NAMES[own_layer]} layer) imports "
                    f"{name} ({_LAYER_NAMES[target_layer]} layer) — upward "
                    "imports break index → graph → kernel → surfaces "
                    "(docs/architecture.md)",
                )
            elif ctx.module.startswith("repro.core") and name.startswith(
                self.UPPER_FORBIDDEN_FOR_CORE
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{ctx.module} imports {name}: repro.core must not depend "
                    "on repro.analysis or repro.datasets "
                    "(docs/architecture.md)",
                )


# ---------------------------------------------------------------------------
# RL003 — obs-counter registry


class ObsRegistryRule(Rule):
    id = "RL003"
    name = "obs-registry"
    summary = (
        "every literal obs counter/span name is declared in "
        "repro/obs_registry.py (regenerate: --write-obs-registry)"
    )

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if ctx.tree is None or not (ctx.in_src() or ctx.in_tests()):
            return
        declared = obsreg.declared_names(project)
        if declared is None:
            return  # project-level staleness check reports this
        counters, spans = declared
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                hit = obsreg.obs_call_name(node)
                if hit is None or hit[1] is None:
                    continue
                method, name = hit
                if method == "span":
                    if name not in spans:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"span name {name!r} is not declared in the obs "
                            "registry (typo, or regenerate with "
                            "--write-obs-registry)",
                        )
                elif name not in counters:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"counter name {name!r} is not declared in the obs "
                        "registry — a typo here records or reads nothing "
                        "(regenerate with --write-obs-registry)",
                    )
            elif isinstance(node, ast.Subscript):
                sub = obsreg.snapshot_subscript_name(node)
                if sub is None:
                    continue
                kind, name = sub
                pool = counters if kind == "counters" else spans
                if name not in pool:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"snapshot lookup [{kind!r}][{name!r}] names an "
                        "undeclared obs entry — a typo here silently reads "
                        "a missing key",
                    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        # Staleness only makes sense when the whole src tree was
        # scanned; repro/obs.py being present is the proxy for that.
        obs_ctx = project.module("repro.obs")
        if obs_ctx is None:
            return
        declared = obsreg.declared_names(project)
        anchor = project.rel(obsreg.REGISTRY_REL)
        anchor_rel = anchor.rel if anchor is not None else obs_ctx.rel
        if declared is None:
            yield Finding(
                self.id,
                anchor_rel,
                1,
                0,
                "obs registry module src/repro/obs_registry.py is missing — "
                "generate it with python -m repro.lint --write-obs-registry",
            )
            return
        scanned = obsreg.scan_producers(project.contexts)
        for kind, have, want in (
            ("counter", declared[0], scanned[0]),
            ("span", declared[1], scanned[1]),
        ):
            missing = sorted(want - have)
            stale = sorted(have - want)
            if missing:
                yield Finding(
                    self.id,
                    anchor_rel,
                    1,
                    0,
                    f"obs registry is stale: produced {kind} name(s) "
                    f"{missing} not declared — regenerate with "
                    "--write-obs-registry",
                )
            if stale:
                yield Finding(
                    self.id,
                    anchor_rel,
                    1,
                    0,
                    f"obs registry is stale: declared {kind} name(s) "
                    f"{stale} have no producer in src/ — regenerate with "
                    "--write-obs-registry",
                )


# ---------------------------------------------------------------------------
# RL004 — exception taxonomy at the store/serve trust boundary


_BUILTIN_EXCEPTIONS = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "OSError",
    "IOError",
    "LookupError",
    "ArithmeticError",
    "ZeroDivisionError",
    "StopIteration",
    "NotImplementedError",
    "AssertionError",
    "SystemError",
}


class ExceptionTaxonomyRule(Rule):
    id = "RL004"
    name = "exception-taxonomy"
    summary = (
        "repro.store / repro.serve raise only types imported from "
        "repro.exceptions (the StoreError hierarchy and documented errors)"
    )

    SCOPED_MODULES = ("repro.store", "repro.serve")

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if ctx.module not in self.SCOPED_MODULES or ctx.tree is None:
            return
        allowed = {
            name.rsplit(".", 1)[-1]
            for _, name in import_targets(ctx)
            if name.startswith("repro.exceptions.")
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            raised: Optional[str] = None
            if isinstance(exc, ast.Call):
                raised = terminal_name(exc.func)
                is_constructed = True
            else:
                raised = terminal_name(exc)
                is_constructed = False
            if raised is None:
                continue
            if raised in allowed:
                continue
            if raised in _BUILTIN_EXCEPTIONS:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{ctx.module} raises builtin {raised}; the store/serve "
                    "boundary must raise the typed repro.exceptions "
                    "hierarchy (StoreError subclasses, ValidationError, ...)",
                )
            elif is_constructed:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{ctx.module} raises {raised}, which is not imported "
                    "from repro.exceptions — callers rely on the typed "
                    "taxonomy for exit codes and retries",
                )
            # A bare non-builtin name (``raise exc``) is a re-raise of a
            # caught variable; its type was checked where it was raised.


# ---------------------------------------------------------------------------
# RL005 — lock discipline


class LockDisciplineRule(Rule):
    id = "RL005"
    name = "lock-discipline"
    summary = (
        "attributes annotated '# reprolint: lock-guarded' are only touched "
        "inside 'with self.<lock>:' (or methods marked holds-lock)"
    )

    GUARD_MARK = "reprolint: lock-guarded"
    HOLDS_MARK = "reprolint: holds-lock"

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(ctx, cls)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef):
        guarded: Set[str] = set()
        locks: Set[str] = set()
        for node in ast.walk(cls):
            target = self._self_assign_target(node)
            if target is None:
                continue
            if self.GUARD_MARK in ctx.comment_on(node.lineno):
                guarded.add(target)
            if self._is_lock_ctor(node.value):
                locks.add(target)
        if not guarded:
            return
        if not locks:
            yield ctx.finding(
                self.id,
                cls,
                f"class {cls.name} declares lock-guarded attributes "
                f"{sorted(guarded)} but assigns no threading.Lock/RLock",
            )
            return
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name == "__init__":
                continue  # construction happens-before publication
            if self._marked_holds_lock(ctx, fn):
                continue
            for stmt in fn.body:
                yield from self._walk(ctx, stmt, guarded, locks, False)

    @staticmethod
    def _self_assign_target(node) -> Optional[str]:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            return None
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                return t.attr
        return None

    @staticmethod
    def _is_lock_ctor(value) -> bool:
        return (
            isinstance(value, ast.Call)
            and terminal_name(value.func) in ("Lock", "RLock")
        )

    def _marked_holds_lock(self, ctx: FileContext, fn) -> bool:
        first_body_line = fn.body[0].lineno if fn.body else fn.lineno
        return any(
            self.HOLDS_MARK in ctx.comment_on(line)
            for line in range(fn.lineno, first_body_line + 1)
        )

    def _walk(self, ctx, node, guarded: Set[str], locks: Set[str], held: bool):
        if isinstance(node, ast.With) and not held:
            takes_lock = any(
                isinstance(item.context_expr, ast.Attribute)
                and isinstance(item.context_expr.value, ast.Name)
                and item.context_expr.value.id == "self"
                and item.context_expr.attr in locks
                for item in node.items
            )
            for child in node.body:
                yield from self._walk(ctx, child, guarded, locks, takes_lock)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
            and not held
        ):
            yield ctx.finding(
                self.id,
                node,
                f"self.{node.attr} is lock-guarded but accessed outside "
                "'with self.<lock>:' — wrap the access or mark the method "
                "'# reprolint: holds-lock' if every caller holds it",
            )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, guarded, locks, held)


# ---------------------------------------------------------------------------
# RL006 — no wall clock in tests


_WALL_CLOCK = {"time", "perf_counter", "perf_counter_ns", "process_time",
               "process_time_ns"}
_MONOTONIC = {"monotonic", "monotonic_ns"}


class WallClockRule(Rule):
    id = "RL006"
    name = "wall-clock"
    summary = (
        "tests never read time.time/perf_counter; time.monotonic only "
        "inside @pytest.mark.slow opt-in tests (perf asserts use obs "
        "counters — docs/observability.md)"
    )

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if not ctx.in_tests() or ctx.tree is None:
            return
        from_time = self._names_imported_from_time(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = self._time_function(node, from_time)
            if fn is None:
                continue
            if fn in _WALL_CLOCK:
                yield ctx.finding(
                    self.id,
                    node,
                    f"time.{fn} in tests — perf assertions must be "
                    "repro.obs counter-based (deterministic); see "
                    "docs/observability.md",
                )
            elif fn in _MONOTONIC and not self._in_slow_test(node):
                yield ctx.finding(
                    self.id,
                    node,
                    f"time.{fn} outside an @pytest.mark.slow test — timing "
                    "is jitter on shared CI; gate it behind the opt-in "
                    "slow marker",
                )

    @staticmethod
    def _names_imported_from_time(ctx: FileContext) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    out[alias.asname or alias.name] = alias.name
        return out

    @staticmethod
    def _time_function(node: ast.Call, from_time: Dict[str, str]) -> Optional[str]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in from_time:
            return from_time[func.id]
        return None

    @staticmethod
    def _in_slow_test(node: ast.AST) -> bool:
        fn = enclosing_function(node)
        while fn is not None:
            for dec in fn.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                if dotted_name(target) in ("pytest.mark.slow", "mark.slow"):
                    return True
            fn = enclosing_function(fn)
        return False


# ---------------------------------------------------------------------------
# RL007 — unseeded / global RNG in src


_LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "sample",
    "ranf", "normal", "uniform", "shuffle", "permutation", "choice",
    "seed", "standard_normal", "exponential", "poisson", "binomial",
    "multivariate_normal", "beta", "gamma",
}


class UnseededRngRule(Rule):
    id = "RL007"
    name = "unseeded-rng"
    summary = (
        "src/ never draws from the global np.random state or an unseeded "
        "Generator — reproduction results must be replayable"
    )

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if not ctx.in_src() or ctx.tree is None:
            return
        bare_ctors = self._bare_rng_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = dotted_name(func.value)
                if base in ("np.random", "numpy.random"):
                    if func.attr in _LEGACY_NP_RANDOM:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"np.random.{func.attr} uses the global RNG "
                            "state — pass a seeded np.random.default_rng "
                            "(see repro._validation.check_seed)",
                        )
                    elif func.attr in ("default_rng", "RandomState") and (
                        not node.args and not node.keywords
                    ):
                        yield ctx.finding(
                            self.id,
                            node,
                            f"np.random.{func.attr}() without a seed is "
                            "nondeterministic — thread an explicit seed "
                            "through (check_seed)",
                        )
            elif (
                isinstance(func, ast.Name)
                and func.id in bare_ctors
                and not node.args
                and not node.keywords
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{func.id}() without a seed is nondeterministic — "
                    "thread an explicit seed through (check_seed)",
                )

    @staticmethod
    def _bare_rng_imports(ctx: FileContext) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
            ):
                for alias in node.names:
                    if alias.name in ("default_rng", "RandomState"):
                        out.add(alias.asname or alias.name)
        return out


# ---------------------------------------------------------------------------
# RL008 — float equality on score arrays


_SCORE_NAME = re.compile(r"(?i)^(?:(?:lof|lrd|reach)(?:s?$|_.*)|scores?_?$)")

_APPROX_COMPARATORS = {"approx", "isclose", "allclose"}


class FloatEqualityRule(Rule):
    id = "RL008"
    name = "float-equality"
    summary = (
        "no ==/!= on score-like values (lof/lrd/reach/score names); use "
        "np.array_equal / testing.assert_array_equal for bit-identity or "
        "pytest.approx for tolerance"
    )

    def check_file(self, ctx: FileContext, project: Project) -> Iterable[Finding]:
        if not (ctx.in_src() or ctx.in_tests()) or ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_approx(o) for o in operands):
                continue
            # ``scores == {}`` / ``== []`` is container emptiness, not
            # float equality.
            if any(self._is_empty_container(o) for o in operands):
                continue
            for operand in operands:
                name = terminal_name(operand)
                if name and _SCORE_NAME.match(name):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"float == on score-like value {name!r} — use "
                        "np.array_equal (bit-identity) or pytest.approx "
                        "(tolerance) instead of the == operator",
                    )
                    break

    @staticmethod
    def _is_approx(node) -> bool:
        return (
            isinstance(node, ast.Call)
            and terminal_name(node.func) in _APPROX_COMPARATORS
        )

    @staticmethod
    def _is_empty_container(node) -> bool:
        if isinstance(node, ast.Dict):
            return not node.keys
        if isinstance(node, (ast.List, ast.Set)):
            return not node.elts
        return False


# ---------------------------------------------------------------------------
# RL009-RL011 — interprocedural concurrency rules
#
# All three share one ConcurrencyModel (call graph + lock-set dataflow,
# built once per run via Project.cached). See lint/callgraph.py and
# lint/locks.py for the model, docs/static-analysis.md for the catalog
# entries and the unsoundness limits.


def _concurrency_model(project: Project):
    from .locks import ConcurrencyModel

    return ConcurrencyModel.for_project(project)


def _top_level_classes(ctx: FileContext):
    if ctx.tree is None:
        return
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            yield node


def _class_qualname(ctx: FileContext, cls: ast.ClassDef) -> str:
    from .callgraph import _pseudo_module

    module = ctx.module or _pseudo_module(ctx.rel)
    return f"{module}.{cls.name}"


class InferredRaceRule(Rule):
    id = "RL009"
    name = "inferred-race"
    summary = (
        "lock-guarded attribute reachable from concurrent thread entries "
        "with no guard lock held on some call path; holds-lock claims are "
        "verified against every resolved caller"
    )

    #: entry kinds that imply >1 concurrent thread by themselves (a
    #: ThreadingHTTPServer handler / worker pool / forked fleet runs
    #: many instances of the same entry at once)
    _SELF_CONCURRENT = ("handler", "pool", "fork")

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = _concurrency_model(project)
        for ctx in project.contexts:
            for cls in _top_level_classes(ctx):
                cls_qual = _class_qualname(ctx, cls)
                guarded = self._guarded_attrs(ctx, cls)
                if not guarded:
                    continue
                guard_locks = frozenset(
                    model.registry.class_locks(model.graph, cls_qual)
                )
                if not guard_locks:
                    continue  # RL005 flags the missing lock
                yield from self._check_access_paths(
                    model, cls_qual, guarded, guard_locks
                )
                yield from self._check_holds_lock_claims(
                    model, ctx, cls, cls_qual, guard_locks
                )

    # -- annotation collection (same markers RL005 trusts locally) ---------

    def _guarded_attrs(self, ctx: FileContext, cls: ast.ClassDef) -> Set[str]:
        guarded: Set[str] = set()
        for node in ast.walk(cls):
            target = LockDisciplineRule._self_assign_target(node)
            if target is None:
                continue
            if LockDisciplineRule.GUARD_MARK in ctx.comment_on(node.lineno):
                guarded.add(target)
        return guarded

    # -- unguarded-path detection ------------------------------------------

    def _check_access_paths(self, model, cls_qual, guarded, guard_locks):
        from .callgraph import _local_nodes

        graph = model.graph
        # every `self.<guarded>` access in methods (and their nested
        # defs) of the class, with the locally-held set at the access
        accesses = []  # (FunctionInfo, Attribute node)
        prefix = cls_qual + "."
        for qual, info in graph.functions.items():
            if not qual.startswith(prefix):
                continue
            if qual == prefix + "__init__":
                continue  # construction happens-before publication
            for node in _local_nodes(info.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                ):
                    accesses.append((info, node))
        if not accesses:
            return
        # concurrency precondition: the guarded state is touched by >1
        # thread — two distinct entries, or one self-concurrent entry
        reaching = {}
        for info, _ in accesses:
            for entry in graph.entries_reaching(info.qualname):
                reaching[(entry.kind, entry.target)] = entry
        concurrent = len(reaching) >= 2 or any(
            e.kind in self._SELF_CONCURRENT for e in reaching.values()
        )
        if not concurrent:
            return
        reported: Set[Tuple[str, str]] = set()
        for info, node in accesses:
            facts = model.facts[info.qualname]
            local = facts.held(node)
            if local & guard_locks:
                continue  # syntactically under the lock
            key = (info.qualname, node.attr)
            if key in reported:
                continue
            for entry in graph.entries_reaching(info.qualname):
                must = model.must_held(entry.target).get(
                    info.qualname, frozenset()
                )
                if (must | local) & guard_locks:
                    continue  # this entry always holds a guard lock here
                witness = self._witness(model, entry, info, node, guard_locks)
                if witness is None:
                    continue  # per-site analysis shows the path is guarded
                reported.add(key)
                yield info.ctx.finding(
                    self.id,
                    node,
                    f"self.{node.attr} is lock-guarded but "
                    f"{info.qualname} can be reached from "
                    f"{entry.label} with no guard lock held "
                    "(run with --explain RL009 for the witness path)",
                    witness,
                )
                break

    def _witness(self, model, entry, info, node, guard_locks):
        for lock in sorted(guard_locks):
            chain = model.lock_free_path(entry.target, info.qualname, lock)
            if chain is not None:
                lines = model.render_chain(entry, chain)
                lines.append(
                    f"  unguarded access: self.{node.attr} "
                    f"({info.ctx.rel}:{node.lineno}) — "
                    f"{lock.render()} not held"
                )
                return tuple(lines)
        return None

    # -- holds-lock claim verification -------------------------------------

    def _check_holds_lock_claims(self, model, ctx, cls, cls_qual, guard_locks):
        graph = model.graph
        discipline = RULES_BY_CLASS["LockDisciplineRule"]
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not discipline._marked_holds_lock(ctx, fn):
                continue
            qual = f"{cls_qual}.{fn.name}"
            sites = graph.callers.get(qual, [])
            if not sites:
                yield ctx.finding(
                    self.id,
                    fn,
                    f"{qual} claims '# reprolint: holds-lock' but no "
                    "resolved caller can discharge the claim — either the "
                    "callers are invisible to the call graph (document "
                    "with a suppression) or the annotation is stale",
                )
                continue
            for site in sites:
                if model.site_held(site) & guard_locks:
                    continue
                if site.caller == cls_qual + ".__init__":
                    continue  # construction happens-before publication
                caller_info = graph.functions.get(site.caller)
                if caller_info is not None and discipline._marked_holds_lock(
                    caller_info.ctx, caller_info.node
                ):
                    continue  # claim propagates up the annotated chain
                yield ctx.finding(
                    self.id,
                    site.node,
                    f"{site.caller} calls {qual} (annotated holds-lock) "
                    "without holding "
                    f"{', '.join(l.render() for l in sorted(guard_locks))}",
                )


class LockOrderCycleRule(Rule):
    id = "RL010"
    name = "lock-order-cycle"
    summary = (
        "cycle in the acquired-while-holding graph (potential deadlock); "
        "re-acquiring a non-reentrant Lock is a guaranteed self-deadlock"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = _concurrency_model(project)
        for steps in model.order_cycles():
            first_lock, _, fn0, node0 = steps[0]
            rel = model.rel_of(fn0)
            witness = tuple(
                f"{fn} acquires {b.render()} while holding {a.render()} "
                f"({model.rel_of(fn)}:{getattr(node, 'lineno', '?')})"
                for a, b, fn, node in steps
            )
            if len(steps) == 1 and steps[0][0] == steps[0][1]:
                message = (
                    f"non-reentrant lock {first_lock.render()} acquired "
                    f"while already held in {fn0} — guaranteed "
                    "self-deadlock (use RLock or restructure)"
                )
            else:
                order = " -> ".join(a.render() for a, _, _, _ in steps)
                order += f" -> {first_lock.render()}"
                message = (
                    f"lock-order cycle {order}: two threads taking these "
                    "locks in opposite order deadlock"
                )
            yield Finding(
                self.id,
                rel,
                getattr(node0, "lineno", 1),
                getattr(node0, "col_offset", 0),
                message,
                witness,
            )


class BlockingUnderHotLockRule(Rule):
    id = "RL011"
    name = "blocking-under-hot-lock"
    summary = (
        "blocking call (join/wait/queue/socket/subprocess) while holding "
        "a lock that HTTP request handlers contend on"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        from .callgraph import _local_nodes
        from .locks import blocking_call_reason

        model = _concurrency_model(project)
        hot = model.hot_locks()
        if not hot:
            return
        hot_label = {e.target: e.label for e in model.hot_entries()}
        for qual, facts in model.facts.items():
            info = facts.info
            for node in _local_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                reason = blocking_call_reason(node)
                if reason is None:
                    continue
                local = facts.held(node)
                finding = self._check_site(
                    model, hot, hot_label, info, node, reason, local
                )
                if finding is not None:
                    yield finding

    def _check_site(self, model, hot, hot_label, info, node, reason, local):
        held_hot = local & hot
        entry = None
        if not held_hot:
            for candidate in model.graph.entries_reaching(info.qualname):
                must = model.must_held(candidate.target).get(
                    info.qualname, frozenset()
                )
                held_hot = (must | local) & hot
                if held_hot:
                    entry = candidate
                    break
        if not held_hot:
            return None
        locks = ", ".join(l.render() for l in sorted(held_hot))
        witness = []
        if entry is not None:
            chain = model.graph.call_path(entry.target, info.qualname) or []
            witness.extend(model.render_chain(entry, chain))
        witness.append(
            f"  blocking call ({reason}) at {info.ctx.rel}:{node.lineno} "
            f"while holding {locks}"
        )
        witness.append(
            "  handler threads contending on that lock stall: "
            + ", ".join(sorted(hot_label.values()))
        )
        return info.ctx.finding(
            self.id,
            node,
            f"blocking call in {info.qualname} ({reason}) while holding "
            f"{locks}, which the serve hot path contends on",
            tuple(witness),
        )


# ---------------------------------------------------------------------------
# registry


RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        OneKernelRule(),
        ImportLayeringRule(),
        ObsRegistryRule(),
        ExceptionTaxonomyRule(),
        LockDisciplineRule(),
        WallClockRule(),
        UnseededRngRule(),
        FloatEqualityRule(),
        InferredRaceRule(),
        LockOrderCycleRule(),
        BlockingUnderHotLockRule(),
    )
}

#: class-name lookup for rules that share helpers (RL009 reuses RL005's
#: annotation parsing so the two can never drift apart)
RULES_BY_CLASS: Dict[str, Rule] = {
    type(rule).__name__: rule for rule in RULES.values()
}


def get_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The rule set for a run, in stable ID order.

    ``select`` keeps only the named IDs; ``ignore`` drops IDs from
    whatever ``select`` produced. Unknown IDs raise ValueError so typos
    in CI configs fail loudly.
    """
    known = set(RULES)
    for blob in (select or []), (ignore or []):
        unknown = set(blob) - known
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    ids = list(select) if select else sorted(RULES)
    if ignore:
        ids = [i for i in ids if i not in set(ignore)]
    return [RULES[i] for i in sorted(set(ids))]
