"""Shared input-validation helpers.

These helpers centralize the checks every public entry point performs on
its inputs so that error messages are consistent across the library and
the numerical code can assume clean, contiguous float64 arrays.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .exceptions import ValidationError


def check_data(X, *, name: str = "X", min_rows: int = 1) -> np.ndarray:
    """Validate and canonicalize a dataset.

    Accepts any 2-d array-like of real numbers and returns a C-contiguous
    ``float64`` ndarray of shape ``(n, d)``.

    Raises :class:`ValidationError` for empty input, wrong dimensionality,
    non-numeric dtypes, or NaN/inf entries.
    """
    try:
        arr = np.asarray(X, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be numeric array-like: {exc}") from exc
    if arr.ndim == 1:
        # A single feature column is accepted as a convenience.
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be 2-dimensional (n_samples, n_features), got ndim={arr.ndim}"
        )
    if arr.shape[0] < min_rows:
        raise ValidationError(
            f"{name} must contain at least {min_rows} row(s), got {arr.shape[0]}"
        )
    if arr.shape[1] < 1:
        raise ValidationError(f"{name} must have at least one feature column")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_min_pts(min_pts: int, n_samples: int, *, name: str = "min_pts") -> int:
    """Validate a MinPts value against the dataset size.

    The paper requires ``1 <= MinPts <= |D|`` (Theorem 1 statement); since
    the k-distance of *p* is defined over ``D \\ {p}``, the practical upper
    bound is ``n_samples - 1``.
    """
    if not isinstance(min_pts, (int, np.integer)) or isinstance(min_pts, bool):
        raise ValidationError(f"{name} must be an integer, got {min_pts!r}")
    if min_pts < 1:
        raise ValidationError(f"{name} must be >= 1, got {min_pts}")
    if min_pts > n_samples - 1:
        raise ValidationError(
            f"{name}={min_pts} is too large for n_samples={n_samples}; "
            f"each object needs {min_pts} neighbors besides itself"
        )
    return int(min_pts)


def check_min_pts_range(
    min_pts_lb: int, min_pts_ub: int, n_samples: int
) -> Tuple[int, int]:
    """Validate a ``[MinPtsLB, MinPtsUB]`` range (Section 6.2)."""
    lb = check_min_pts(min_pts_lb, n_samples, name="min_pts_lb")
    ub = check_min_pts(min_pts_ub, n_samples, name="min_pts_ub")
    if lb > ub:
        raise ValidationError(
            f"min_pts_lb={lb} must not exceed min_pts_ub={ub}"
        )
    return lb, ub


def check_seed(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an int, or an existing Generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def check_positive(value, *, name: str) -> float:
    """Validate a strictly positive scalar parameter."""
    try:
        val = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(val) or val <= 0:
        raise ValidationError(f"{name} must be finite and > 0, got {value!r}")
    return val


def check_fraction(value, *, name: str, inclusive: bool = False) -> float:
    """Validate a scalar in (0, 1), or [0, 1] when ``inclusive``."""
    try:
        val = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    lo_ok = val >= 0 if inclusive else val > 0
    hi_ok = val <= 1 if inclusive else val < 1
    if not (lo_ok and hi_ok):
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValidationError(f"{name} must lie in {bounds}, got {value!r}")
    return val


def check_labels(labels: Optional[Sequence[str]], n_samples: int) -> Optional[list]:
    """Validate optional per-object labels used by ranking helpers."""
    if labels is None:
        return None
    labels = list(labels)
    if len(labels) != n_samples:
        raise ValidationError(
            f"labels must have length {n_samples}, got {len(labels)}"
        )
    return labels
