"""repro.stream — the online model lifecycle: ingest, drift, refit, swap.

The paper defines LOF as a batch computation; production traffic is a
stream. This module closes the loop between the three subsystems that
already exist — the incremental engine over a
:class:`~repro.core.graph.DynamicNeighborhoodGraph`, the REPROLOF model
store, and the serving layer's hot-swap machinery — into one online
lifecycle:

1. **Ingest.** Every observation enters a FIFO sliding window maintained
   by :class:`~repro.core.streaming.SlidingWindowLOF`: the incremental
   engine inserts it, evicts the oldest point beyond ``window``, and
   keeps maintained window scores bit-identical to batch
   rematerialization of the window contents (the replay differential
   wall in ``tests/stream/``).
2. **Drift.** Each observation is scored against the frozen serving
   model (by the caller on the ``/score`` path, or directly here). A
   seeded :class:`ReservoirSampler` keeps a uniform reference sample of
   everything ever ingested; the drift statistic is the quantile shift
   ``Q_q(recent scores) / Q_q(reference scores under the serving
   model)`` — cheap reference-sample scoring in the spirit of
   linear-time sensitivity sampling (Lucic et al.). A statistic above
   ``drift_factor`` is drift.
3. **Refit.** Drift (or the bootstrap warm-up, or an operator request)
   triggers a single-flight refit: the window snapshot is batch-fitted
   by :class:`~repro.core.estimator.LocalOutlierFactor` and written as a
   REPROLOF v3 store whose header carries a ``lineage`` block (parent
   fingerprint, trigger reason, stream position).
4. **Swap.** The new store is atomically hot-swapped into serving via
   the caller-supplied ``swap`` callback — on the HTTP path this is
   ``_ModelHTTPServer.reload_store``, i.e. exactly the ``/admin/reload``
   machinery and its lock discipline — and the detector re-seeds the
   drift reference from the reservoir under the new model.

Everything is count-based (no wall clock): given the same observation
sequence, seed and thresholds, every check, detection, refit and swap
happens at the same stream position — replay runs are deterministic by
construction, which is what lets ``tests/stream/`` pin the lifecycle
with exact counters and bit-identity assertions.

Shared state is guarded by one reentrant lock under the RL005
discipline; the serving model itself is an immutable
:class:`~repro.serve.OnlineScorer` read lock-free, swapped only under
the lock.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from . import obs
from ._validation import check_seed
from .core.estimator import LocalOutlierFactor
from .core.streaming import SlidingWindowLOF
from .exceptions import ValidationError
from .serve import OnlineScorer
from .store import read_header, store_fingerprint

__all__ = [
    "ReservoirSampler",
    "StreamUpdate",
    "RefitRecord",
    "StreamingDetector",
]


class ReservoirSampler:
    """Uniform Algorithm-R reservoir over a stream, explicitly seeded.

    Keeps a uniform sample of ``capacity`` items from everything offered
    so far. The RNG must be seeded (an int or a Generator; ``None`` is
    rejected): the sample — and therefore every drift decision derived
    from it — is a pure function of the seed and the observation order,
    which is what makes stream replays deterministic by construction
    (and keeps RL007 happy).
    """

    def __init__(self, capacity: int, seed=0):
        if capacity < 1:
            raise ValidationError(f"reservoir capacity must be >= 1, got {capacity}")
        if seed is None:
            raise ValidationError(
                "the reservoir sampler must be explicitly seeded (int or "
                "numpy Generator); None would make stream replays "
                "non-deterministic"
            )
        self.capacity = int(capacity)
        self._rng = check_seed(seed)
        self._seen = 0
        self._items: List[np.ndarray] = []

    @property
    def n_seen(self) -> int:
        return self._seen

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, item) -> bool:
        """Offer one item; returns True when it entered the reservoir."""
        item = np.asarray(item, dtype=np.float64)
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._items[slot] = item
            return True
        return False

    def sample(self) -> np.ndarray:
        """The current reference sample, stacked (order is slot order)."""
        if not self._items:
            return np.empty((0, 0))
        return np.vstack(self._items)


@dataclass
class StreamUpdate:
    """What one :meth:`StreamingDetector.observe` call did."""

    t: int                        # 0-based arrival index
    score: Optional[float]        # score under the frozen serving model
    window_size: int              # live points after insert + eviction
    evicted: bool                 # an old point aged out
    drift_checked: bool = False   # a drift check ran at this position
    drifted: bool = False         # ... and detected a shift
    refit_triggered: bool = False  # this observation started a refit


@dataclass
class RefitRecord:
    """One completed refit → swap generation (the lineage chain)."""

    seq: int                      # 1-based refit generation
    reason: str                   # 'bootstrap' | 'drift' | 'manual'
    t: int                        # stream position that triggered it
    n_points: int                 # window points the model was fitted on
    path: Path                    # REPROLOF store written
    fingerprint: str              # store_fingerprint of the new model
    parent: Optional[str]         # fingerprint swapped out (None at bootstrap)

    def as_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "reason": self.reason,
            "t": self.t,
            "n_points": self.n_points,
            "path": str(self.path),
            "fingerprint": self.fingerprint,
            "parent": self.parent,
        }


class StreamingDetector:
    """The online lifecycle: windowed ingest, drift, refit, hot-swap.

    Parameters
    ----------
    min_pts : MinPts for both the maintained window scores and refits.
    window : sliding-window capacity (must exceed ``min_pts``).
    store_dir : directory refit stores are written into
        (``stream-refit-NNNNN.rlof``, one per generation).
    scorer / duplicate_mode / metric / aggregate / threshold : the model
        recipe every refit uses (and the initial bootstrap fit).
    seed : reservoir seed — replay determinism requires it (RL007).
    reservoir : reference-sample capacity.
    drift_quantile : the quantile ``q`` compared between recent and
        reference scores.
    drift_factor : drift is declared when
        ``Q_q(recent) > drift_factor * Q_q(reference)``.
    check_every : run a drift check every this many observations; the
        recent-score window holds the last ``check_every`` scores.
    cooldown : minimum observations between refits (default: ``window``)
        — a drift detection inside the cooldown is counted but does not
        trigger.
    warmup : without an ``initial_store``, bootstrap the first model
        once the window holds this many points (default: ``window``).
    refit_min_pts : the (lb, ub) MinPts range every refit store is
        fitted with (default ``(min_pts, min_pts)``) — the serve path
        passes the original store's grid here so a hot-swapped model
        answers the same sweep as the one it replaced. The maintained
        window scores always use the single ``min_pts``.
    initial_store : serve an existing REPROLOF store from the start
        instead of bootstrapping.
    swap : callback invoked with the new store path after every refit —
        wire ``_ModelHTTPServer.reload_store`` here to reuse the
        ``/admin/reload`` hot-swap machinery. Its return value is kept
        on the :class:`RefitRecord` chain.
    background : run refits on a daemon thread (the production serve
        mode) instead of inline in the triggering ``observe`` call (the
        deterministic replay mode). Single-flight either way.
    cache_size : LRU size for the detector's own serving scorer.

    Thread-safety: all mutable state is guarded by one reentrant lock
    (RL005-annotated); ``observe`` may be called from many request
    threads concurrently and every counter stays exact.
    """

    def __init__(
        self,
        min_pts: int,
        window: int,
        store_dir,
        *,
        scorer: str = "lof",
        duplicate_mode: str = "inf",
        metric="euclidean",
        aggregate: str = "max",
        threshold: float = 1.5,
        seed=0,
        reservoir: int = 64,
        drift_quantile: float = 0.9,
        drift_factor: float = 2.0,
        check_every: int = 32,
        cooldown: Optional[int] = None,
        warmup: Optional[int] = None,
        refit_min_pts=None,
        initial_store=None,
        swap: Optional[Callable[[Path], Dict]] = None,
        background: bool = False,
        cache_size: int = 0,
    ):
        if store_dir is None:
            raise ValidationError("store_dir is required: refits write stores there")
        if not (0.0 < float(drift_quantile) < 1.0):
            raise ValidationError(
                f"drift_quantile must be in (0, 1), got {drift_quantile}"
            )
        if float(drift_factor) < 0.0:
            raise ValidationError(
                f"drift_factor must be >= 0, got {drift_factor}"
            )
        if int(check_every) < 1:
            raise ValidationError(f"check_every must be >= 1, got {check_every}")
        self.min_pts = int(min_pts)
        self.window = int(window)
        self.store_dir = Path(store_dir)
        self.scorer = scorer
        self.duplicate_mode = duplicate_mode
        self.metric = metric
        self.aggregate = aggregate
        self.threshold = float(threshold)
        self.drift_quantile = float(drift_quantile)
        self.drift_factor = float(drift_factor)
        self.check_every = int(check_every)
        self.cooldown = self.window if cooldown is None else int(cooldown)
        self.warmup = self.window if warmup is None else int(warmup)
        if self.warmup <= self.min_pts:
            raise ValidationError(
                f"warmup={self.warmup} must exceed min_pts={self.min_pts}"
            )
        if refit_min_pts is None:
            self.refit_min_pts = (self.min_pts, self.min_pts)
        else:
            lb, ub = (int(refit_min_pts[0]), int(refit_min_pts[1]))
            if not 1 <= lb <= ub:
                raise ValidationError(
                    f"refit_min_pts must be an (lb, ub) pair with "
                    f"1 <= lb <= ub, got {refit_min_pts!r}"
                )
            self.refit_min_pts = (lb, ub)
        if self.warmup <= max(self.refit_min_pts):
            raise ValidationError(
                f"warmup={self.warmup} must exceed the refit MinPts upper "
                f"bound {max(self.refit_min_pts)} so every refit can fit"
            )
        self.background = bool(background)
        self.cache_size = int(cache_size)
        self._swap_cb = swap
        self._lock = threading.RLock()
        self._win = SlidingWindowLOF(          # reprolint: lock-guarded
            min_pts=self.min_pts,
            window=self.window,
            metric=metric,
            duplicate_mode=duplicate_mode,
        )
        self._reservoir = ReservoirSampler(reservoir, seed=seed)  # reprolint: lock-guarded
        self._recent: Deque[float] = deque(maxlen=self.check_every)  # reprolint: lock-guarded
        self._ref_q: Optional[float] = None    # reprolint: lock-guarded
        self._serving: Optional[OnlineScorer] = None  # reprolint: lock-guarded
        self._model_path: Optional[Path] = None  # reprolint: lock-guarded
        self._fingerprint: Optional[str] = None  # reprolint: lock-guarded
        self._refit_active = False             # reprolint: lock-guarded
        self._refit_thread: Optional[threading.Thread] = None  # reprolint: lock-guarded
        self._refits: List[RefitRecord] = []   # reprolint: lock-guarded
        self._t = -1                           # reprolint: lock-guarded
        self._since_check = 0                  # reprolint: lock-guarded
        self._since_refit = 0                  # reprolint: lock-guarded
        self._n_checks = 0                     # reprolint: lock-guarded
        self._n_drifts = 0                     # reprolint: lock-guarded
        self._n_evictions = 0                  # reprolint: lock-guarded
        if initial_store is not None:
            path = Path(initial_store)
            self._serving = OnlineScorer.from_path(
                path, cache_size=self.cache_size, scorer=None
            )
            self._model_path = path
            self._fingerprint = store_fingerprint(read_header(path))

    # -- ingest ----------------------------------------------------------------

    def observe(self, point, score: Optional[float] = None) -> StreamUpdate:
        """Ingest one observation; returns what the lifecycle did.

        ``score`` is the observation's score under the frozen serving
        model when the caller already computed it (the ``/score`` path
        feeds served scores back here so the hot path scores each point
        exactly once); ``None`` makes the detector score it itself, or
        skip scoring while no model exists yet (bootstrap warm-up).
        """
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        refit_reason = None
        with self._lock:
            self._t += 1
            t = self._t
            _handle, _work, evicted = self._win.push(point)
            obs.incr("stream.ingested")
            obs.incr("stream.window.inserts")
            if evicted:
                obs.incr("stream.window.evictions")
                self._n_evictions += 1
            self._reservoir.offer(point)
            if score is None and self._serving is not None:
                score = float(
                    self._serving.score_new(point[None, :], use_cache=False)[0]
                )
            elif score is not None:
                score = float(score)
            if score is not None:
                self._recent.append(score)
            self._since_check += 1
            self._since_refit += 1
            checked = drifted = False
            if self._serving is None:
                if self._win.n_in_window >= self.warmup and not self._refit_active:
                    refit_reason = "bootstrap"
                    self._refit_active = True
            elif self._since_check >= self.check_every and self._recent:
                self._since_check = 0
                checked = True
                self._n_checks += 1
                obs.incr("stream.drift.checks")
                stat = self._drift_statistic()
                if stat is not None and stat > self.drift_factor:
                    drifted = True
                    self._n_drifts += 1
                    obs.incr("stream.drift.detected")
                    if (
                        not self._refit_active
                        and self._since_refit >= self.cooldown
                        and self._win.n_in_window > self.min_pts
                    ):
                        refit_reason = "drift"
                        self._refit_active = True
            update = StreamUpdate(
                t=t,
                score=score,
                window_size=self._win.n_in_window,
                evicted=evicted,
                drift_checked=checked,
                drifted=drifted,
                refit_triggered=refit_reason is not None,
            )
        if refit_reason is not None:
            self._launch_refit(refit_reason)
        return update

    def observe_many(self, points, scores=None) -> List[StreamUpdate]:
        """Ingest a batch in order; ``scores`` optionally parallels it."""
        points = np.asarray(points, dtype=np.float64)
        if scores is None:
            return [self.observe(p) for p in points]
        return [self.observe(p, score=s) for p, s in zip(points, scores)]

    def _drift_statistic(self) -> Optional[float]:  # reprolint: holds-lock
        """The score-quantile shift, or None on the reference-seeding
        check (the first check under an externally attached model)."""
        if self._ref_q is None:
            self._ref_q = self._reference_quantile(self._serving)
            return None
        recent_q = float(
            np.quantile(np.asarray(self._recent, dtype=np.float64), self.drift_quantile)
        )
        if not np.isfinite(self._ref_q) or self._ref_q <= 0.0:
            return None
        return recent_q / self._ref_q

    def _reference_quantile(self, serving) -> float:  # reprolint: holds-lock
        """Q_q of the reservoir sample scored under ``serving`` — the
        cheap reference pass that makes drift detection affordable."""
        sample = self._reservoir.sample()
        if sample.size == 0:
            return float("nan")
        ref_scores = serving.score_new(sample, use_cache=False)
        return float(np.quantile(ref_scores, self.drift_quantile))

    # -- refit + swap ----------------------------------------------------------

    def request_refit(self, reason: str = "manual") -> bool:
        """Trigger a refit now (single-flight: False when one is already
        running or the window is still too small to fit)."""
        with self._lock:
            if self._refit_active or self._win.n_in_window <= self.min_pts:
                return False
            self._refit_active = True
        self._launch_refit(reason)
        return True

    def _launch_refit(self, reason: str) -> None:
        if self.background:
            thread = threading.Thread(
                target=self._run_refit,
                args=(reason,),
                name="repro-stream-refit",
                daemon=True,
            )
            with self._lock:
                self._refit_thread = thread
            thread.start()
        else:
            self._run_refit(reason)

    def _run_refit(self, reason: str) -> None:
        """Fit the window snapshot, write the lineage-stamped store,
        swap it into serving. Runs with ``_refit_active`` held True;
        always clears the flag."""
        try:
            with self._lock:
                snapshot = self._win.points().copy()
                seq = len(self._refits) + 1
                parent = self._fingerprint
                t = self._t
            est = LocalOutlierFactor(
                min_pts=self.refit_min_pts,
                aggregate=self.aggregate,
                metric=self.metric,
                duplicate_mode=self.duplicate_mode,
                threshold=self.threshold,
                scorer=self.scorer,
            ).fit(snapshot)
            self.store_dir.mkdir(parents=True, exist_ok=True)
            path = self.store_dir / f"stream-refit-{seq:05d}.rlof"
            est.save(
                path,
                lineage={
                    "parent": parent,
                    "reason": reason,
                    "refit_seq": seq,
                    "stream_t": t,
                    "window_points": int(snapshot.shape[0]),
                },
            )
            obs.incr("stream.refits")
            serving = OnlineScorer.from_path(
                path, cache_size=self.cache_size, scorer=None
            )
            if self._swap_cb is not None:
                self._swap_cb(path)
            fingerprint = store_fingerprint(read_header(path))
            with self._lock:
                ref_q = self._reference_quantile(serving)
                self._serving = serving
                self._model_path = path
                self._fingerprint = fingerprint
                self._ref_q = ref_q
                self._recent.clear()
                self._since_refit = 0
                self._refits.append(
                    RefitRecord(
                        seq=seq,
                        reason=reason,
                        t=t,
                        n_points=int(snapshot.shape[0]),
                        path=path,
                        fingerprint=fingerprint,
                        parent=parent,
                    )
                )
            obs.incr("stream.swaps")
        finally:
            with self._lock:
                self._refit_active = False

    def wait_refit(self, timeout: Optional[float] = None) -> bool:
        """Join the outstanding background refit, if any; True when no
        refit is still running afterwards."""
        with self._lock:
            thread = self._refit_thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # -- inspection ------------------------------------------------------------

    @property
    def serving(self) -> Optional[OnlineScorer]:
        """The frozen serving model (None until bootstrap completes)."""
        with self._lock:
            return self._serving

    @property
    def model_path(self) -> Optional[Path]:
        with self._lock:
            return self._model_path

    @property
    def fingerprint(self) -> Optional[str]:
        with self._lock:
            return self._fingerprint

    @property
    def refits(self) -> List[RefitRecord]:
        with self._lock:
            return list(self._refits)

    def window_points(self) -> np.ndarray:
        """The window contents, arrival order — the batch-refit prefix."""
        with self._lock:
            return self._win.points()

    def window_scores(self) -> np.ndarray:
        """Maintained online scores of the window (arrival order) —
        bit-identical to batch rematerialization of the same prefix."""
        with self._lock:
            return self._win.scores()

    def stats(self) -> Dict:
        """A JSON-serializable lifecycle snapshot (served on /stats)."""
        with self._lock:
            return {
                "ingested": self._t + 1,
                "window": {
                    "size": self._win.n_in_window,
                    "capacity": self.window,
                    "evictions": self._n_evictions,
                },
                "drift": {
                    "checks": self._n_checks,
                    "detected": self._n_drifts,
                    "quantile": self.drift_quantile,
                    "factor": self.drift_factor,
                    "reference_q": self._ref_q,
                },
                "refits": len(self._refits),
                "refit_active": self._refit_active,
                "model": {
                    "path": None if self._model_path is None else str(self._model_path),
                    "fingerprint": self._fingerprint,
                },
                "lineage": [r.as_dict() for r in self._refits],
            }
