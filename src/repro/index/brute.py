"""Sequential-scan k-NN — the paper's fallback for very high dimensions.

Section 7.4: "For extremely high-dimensional data, we need to use a
sequential scan or some variant of it ... with a complexity of O(n),
leading to a complexity of O(n^2) for the materialization step."

This implementation is also the reference oracle the test suite compares
every other index against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .argkmin import argkmin_with_ties
from .base import Neighborhood, NNIndex, register_index
from .batch import pack_padded, tie_threshold


@register_index
class BruteForceIndex(NNIndex):
    """Exact k-NN by scanning all points for every query."""

    name = "brute"

    def _build(self, X: np.ndarray) -> None:
        # Nothing to precompute: the scan touches raw vectors directly.
        pass

    def _distances_to(self, q: np.ndarray, exclude: Optional[int]) -> np.ndarray:
        dists = self.metric.pairwise_to_point(self._X, q)
        self.stats.distance_evaluations += self._X.shape[0]
        if exclude is not None:
            dists = dists.copy()
            dists[exclude] = np.inf
        return dists

    def _query(self, q, k, exclude):
        dists = self._distances_to(q, exclude)
        if k < len(dists):
            # Partial selection of every point within the k-th distance
            # (ties included), then an exact (distance, id) sort and a
            # truncation to k — so equal-distance candidates always
            # resolve to the lowest ids, deterministically.
            idx = np.flatnonzero(dists <= tie_threshold(dists, k))
        else:
            idx = np.arange(len(dists))
            if exclude is not None:
                idx = idx[idx != exclude]
        result = self._sort_result(idx, dists[idx])
        return Neighborhood(ids=result.ids[:k], distances=result.distances[:k])

    def _query_with_ties(self, q, k, exclude):
        dists = self._distances_to(q, exclude)
        if k < len(dists):
            kth = tie_threshold(dists, k)
        else:
            kth = np.max(dists[np.isfinite(dists)])
        idx = np.flatnonzero(dists <= kth)
        return self._sort_result(idx, dists[idx])

    def _query_radius(self, q, radius, exclude):
        dists = self._distances_to(q, exclude)
        idx = np.flatnonzero(dists <= radius)
        return self._sort_result(idx, dists[idx])

    # -- batched scan: the chunked argkmin engine -----------------------------
    #
    # Batch queries route through :func:`repro.index.argkmin.argkmin_with_ties`.
    # The knobs below are class-level defaults a caller may override on an
    # instance; with ``batch_strategy="auto"`` small batches resolve to the
    # classic single-kernel whole-matrix path (one pairwise matmul + one
    # tie-inclusive selection), and only budget-exceeding batches tile.
    batch_strategy: str = "auto"
    tile_bytes: Optional[int] = None
    n_threads = None

    def _query_batch(self, Q, k, exclude) -> Tuple[np.ndarray, np.ndarray]:
        ids, dists = self._query_batch_with_ties(Q, k, exclude)
        # The tie-inclusive rows are (distance, id)-sorted, so keeping the
        # first k matches the per-query truncation semantics exactly.
        return ids[:, :k], dists[:, :k]

    def _query_batch_with_ties(self, Q, k, exclude) -> Tuple[np.ndarray, np.ndarray]:
        flat_ids, flat_dists, counts = argkmin_with_ties(
            Q,
            self._X,
            k,
            metric=self.metric,
            exclude=exclude,
            strategy=self.batch_strategy,
            tile_bytes=self.tile_bytes,
            n_threads=self.n_threads,
        )
        self.stats.distance_evaluations += Q.shape[0] * self._X.shape[0]
        return pack_padded(flat_ids, flat_dists, counts)
