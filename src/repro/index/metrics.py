"""Distance metrics used by the k-NN substrates.

The paper writes ``d(p, q)`` abstractly; its experiments use Euclidean
distance. We provide the Minkowski family plus Chebyshev, each exposed
through a small object with three capabilities:

``pairwise_to_point(X, q)``
    distances from every row of ``X`` to the single point ``q``
    (the hot path for sequential-scan k-NN);

``distance(p, q)``
    a single distance;

``min_distance_to_rect(q, lo, hi)`` / ``max_distance_to_rect``
    lower/upper bounds between a point and an axis-aligned rectangle,
    which is what tree indexes (kd-tree, R*-tree, X-tree) need to prune.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from .. import obs
from ..exceptions import ValidationError


def euclidean_tile(
    X64: np.ndarray,
    Y64: np.ndarray,
    xx: np.ndarray,
    yy: np.ndarray,
) -> np.ndarray:
    """THE shared expanded-form Euclidean tile kernel.

    Computes ``sqrt(||x||^2 + ||y||^2 - 2 <x, y>)`` for one (tile of a)
    distance matrix, with the exact-duplicate zero-snap applied. Both
    the whole-matrix path (:meth:`EuclideanMetric._pairwise`) and the
    chunked argkmin engine's per-tile path run through this one
    function, so float32-origin tiles keep the paper's duplicate
    semantics (lrd = inf needs true zero distances) exactly like the
    whole-matrix path does.

    Parameters
    ----------
    X64, Y64 : float64 row blocks (callers own the upcast).
    xx, yy : squared norms of the rows, shaped ``(m, 1)`` and ``(1, n)``
        so they broadcast over the tile.
    """
    sq = xx + yy - 2.0 * (X64 @ Y64.T)
    np.maximum(sq, 0.0, out=sq)
    # Cancellation leaves exact duplicates at ~1 ulp of ||x||^2
    # instead of 0, which would silently break the paper's duplicate
    # semantics downstream (lrd = inf needs true zero distances).
    # Entries that are suspiciously small relative to their scale are
    # re-checked exactly and snapped to zero — only bitwise-equal
    # rows are corrected, everything else is untouched.
    suspect_rows, suspect_cols = np.nonzero(sq <= 1e-10 * np.maximum(xx, yy))
    if len(suspect_rows):
        equal = np.all(X64[suspect_rows] == Y64[suspect_cols], axis=1)
        sq[suspect_rows[equal], suspect_cols[equal]] = 0.0
    return np.sqrt(sq)


class Metric:
    """Abstract distance metric.

    Subclasses must be true metrics (symmetry, identity, triangle
    inequality); the LOF definitions and the index pruning rules rely on
    the triangle inequality.

    The public ``distance`` / ``pairwise_to_point`` / ``pairwise``
    methods are the single distance-kernel chokepoint of the whole
    package: every scalar distance computed anywhere flows through one
    of them, which is where :mod:`repro.obs` counts kernel invocations
    (``distance.kernel_calls``) and scalar evaluations
    (``distance.evaluations``). Subclasses implement the underscore
    variants and inherit the instrumented front door.
    """

    name: str = "abstract"

    # -- instrumented front door (do not override) --------------------------

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """A single distance d(p, q)."""
        obs.record_kernel(1)
        return self._distance(p, q)

    def pairwise_to_point(self, X: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Distances from every row of ``X`` to the single point ``q``."""
        obs.record_kernel(len(X))
        return self._pairwise_to_point(X, q)

    def pairwise(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Full (n, m) distance matrix between rows of X and rows of Y."""
        obs.record_kernel(X.shape[0] * Y.shape[0])
        return self._pairwise(X, Y)

    def tile_kernel(self, X: np.ndarray, Y: np.ndarray):
        """Instrumented per-tile distance kernel for the chunked argkmin
        engine (:mod:`repro.index.argkmin`).

        Returns a callable ``tile(x0, x1, y0, y1)`` producing the
        ``(x1 - x0, y1 - y0)`` distance block between those row ranges
        of ``X`` and ``Y``. Inputs may be float32; accumulation is
        always float64 (the upcast happens once, here). Each tile is
        one instrumented kernel invocation, keeping the distance
        chokepoint contract intact under tiling.
        """
        X64 = np.ascontiguousarray(X, dtype=np.float64)
        Y64 = X64 if Y is X else np.ascontiguousarray(Y, dtype=np.float64)

        def tile(x0: int, x1: int, y0: int, y1: int) -> np.ndarray:
            obs.record_kernel((x1 - x0) * (y1 - y0))
            return self._tile(X64, Y64, x0, x1, y0, y1)

        return tile

    # -- kernels (subclass hooks) -------------------------------------------

    def _distance(self, p: np.ndarray, q: np.ndarray) -> float:
        raise NotImplementedError

    def _pairwise_to_point(self, X: np.ndarray, q: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _pairwise(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        out = np.empty((X.shape[0], Y.shape[0]))
        for j in range(Y.shape[0]):
            out[:, j] = self._pairwise_to_point(X, Y[j])
        return out

    def _tile(self, X64, Y64, x0: int, x1: int, y0: int, y1: int) -> np.ndarray:
        return self._pairwise(X64[x0:x1], Y64[y0:y1])

    def min_distance_to_rect(
        self, q: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> float:
        """Smallest possible distance from q to any point in [lo, hi]."""
        raise NotImplementedError

    def max_distance_to_rect(
        self, q: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> float:
        """Largest possible distance from q to any point in [lo, hi]."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """The L2 metric; the paper's experiments use this."""

    name = "euclidean"

    def _distance(self, p, q):
        diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
        return float(np.sqrt(np.dot(diff, diff)))

    def _pairwise_to_point(self, X, q):
        diff = X - q
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def _pairwise(self, X, Y):
        # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y, clipped against
        # rounding, with the exact-duplicate zero-snap — all in the one
        # shared tile kernel the chunked argkmin path also uses.
        xx = np.einsum("ij,ij->i", X, X)[:, None]
        yy = np.einsum("ij,ij->i", Y, Y)[None, :]
        return euclidean_tile(X, Y, xx, yy)

    def tile_kernel(self, X, Y):
        # Row norms are computed once over the full arrays and sliced
        # per tile: einsum row reductions are row-local, so the sliced
        # values are bit-identical to per-block recomputation.
        X64 = np.ascontiguousarray(X, dtype=np.float64)
        Y64 = X64 if Y is X else np.ascontiguousarray(Y, dtype=np.float64)
        xx = np.einsum("ij,ij->i", X64, X64)
        yy = xx if Y64 is X64 else np.einsum("ij,ij->i", Y64, Y64)

        def tile(x0, x1, y0, y1):
            obs.record_kernel((x1 - x0) * (y1 - y0))
            return euclidean_tile(
                X64[x0:x1], Y64[y0:y1], xx[x0:x1, None], yy[None, y0:y1]
            )

        return tile

    def min_distance_to_rect(self, q, lo, hi):
        clipped = np.minimum(np.maximum(q, lo), hi)
        diff = q - clipped
        return float(np.sqrt(np.dot(diff, diff)))

    def max_distance_to_rect(self, q, lo, hi):
        far = np.where(np.abs(q - lo) > np.abs(q - hi), lo, hi)
        diff = q - far
        return float(np.sqrt(np.dot(diff, diff)))


class ManhattanMetric(Metric):
    """The L1 (city-block) metric."""

    name = "manhattan"

    def _distance(self, p, q):
        return float(np.sum(np.abs(np.asarray(p, dtype=np.float64) - q)))

    def _pairwise_to_point(self, X, q):
        return np.sum(np.abs(X - q), axis=1)

    def min_distance_to_rect(self, q, lo, hi):
        clipped = np.minimum(np.maximum(q, lo), hi)
        return float(np.sum(np.abs(q - clipped)))

    def max_distance_to_rect(self, q, lo, hi):
        far = np.where(np.abs(q - lo) > np.abs(q - hi), lo, hi)
        return float(np.sum(np.abs(q - far)))


class ChebyshevMetric(Metric):
    """The L-infinity metric."""

    name = "chebyshev"

    def _distance(self, p, q):
        return float(np.max(np.abs(np.asarray(p, dtype=np.float64) - q)))

    def _pairwise_to_point(self, X, q):
        return np.max(np.abs(X - q), axis=1)

    def min_distance_to_rect(self, q, lo, hi):
        clipped = np.minimum(np.maximum(q, lo), hi)
        return float(np.max(np.abs(q - clipped)))

    def max_distance_to_rect(self, q, lo, hi):
        far = np.where(np.abs(q - lo) > np.abs(q - hi), lo, hi)
        return float(np.max(np.abs(q - far)))


class MinkowskiMetric(Metric):
    """The general Lp metric for finite p >= 1."""

    name = "minkowski"

    def __init__(self, p: float = 2.0):
        p = float(p)
        if not np.isfinite(p) or p < 1.0:
            raise ValidationError(f"Minkowski order p must be >= 1, got {p}")
        self.p = p

    def _distance(self, p, q):
        diff = np.abs(np.asarray(p, dtype=np.float64) - q)
        return float(np.sum(diff ** self.p) ** (1.0 / self.p))

    def _pairwise_to_point(self, X, q):
        return np.sum(np.abs(X - q) ** self.p, axis=1) ** (1.0 / self.p)

    def min_distance_to_rect(self, q, lo, hi):
        clipped = np.minimum(np.maximum(q, lo), hi)
        return float(np.sum(np.abs(q - clipped) ** self.p) ** (1.0 / self.p))

    def max_distance_to_rect(self, q, lo, hi):
        far = np.where(np.abs(q - lo) > np.abs(q - hi), lo, hi)
        return float(np.sum(np.abs(q - far) ** self.p) ** (1.0 / self.p))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MinkowskiMetric(p={self.p})"


_METRICS: Dict[str, Type[Metric]] = {
    "euclidean": EuclideanMetric,
    "l2": EuclideanMetric,
    "manhattan": ManhattanMetric,
    "cityblock": ManhattanMetric,
    "l1": ManhattanMetric,
    "chebyshev": ChebyshevMetric,
    "linf": ChebyshevMetric,
}


def get_metric(metric) -> Metric:
    """Resolve a metric name or instance to a :class:`Metric`.

    ``'minkowski'`` requires an explicit instance because it carries the
    order ``p``; all other names map to parameter-free classes.
    """
    if isinstance(metric, Metric):
        return metric
    if isinstance(metric, str):
        key = metric.lower()
        if key == "minkowski":
            raise ValidationError(
                "pass MinkowskiMetric(p=...) explicitly; the string form "
                "does not carry the order p"
            )
        if key in _METRICS:
            return _METRICS[key]()
        raise ValidationError(
            f"unknown metric {metric!r}; choose from {sorted(set(_METRICS))} "
            f"or pass a Metric instance"
        )
    raise ValidationError(
        f"metric must be a string or Metric instance, got {type(metric).__name__}"
    )
