"""X-tree: an R*-tree that trades splits for supernodes.

Berchtold, Keim & Kriegel's X-tree (the paper's reference [4], and the
index actually used in its Section 7.4 experiments) observes that in
higher dimensions every possible R*-tree split produces heavily
overlapping siblings, and overlapping siblings destroy query pruning.
The X-tree therefore *measures* the overlap of the best available split
and, when it exceeds a threshold, refuses to split — the node becomes a
"supernode" of extended capacity that is scanned linearly instead.

In low dimensions no supernodes form and the X-tree behaves like the
R*-tree; in high dimensions it degrades gracefully toward a sequential
scan. That is precisely the dimension-dependent behavior Figure 10 shows.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from ..exceptions import ValidationError
from .base import register_index
from .rstartree import (
    RStarTreeIndex,
    _Entry,
    _RNode,
    mbr_area,
    mbr_overlap,
    mbr_union,
)


@register_index
class XTreeIndex(RStarTreeIndex):
    """R*-tree variant with overlap-bounded splits and supernodes.

    Parameters
    ----------
    max_overlap : maximum tolerated fraction
        ``overlap(left, right) / union_area`` for a split to be accepted;
        the X-tree paper's default is 0.2. Above it the node becomes (or
        grows as) a supernode.
    """

    name = "xtree"

    def __init__(
        self,
        metric="euclidean",
        max_entries: int = 16,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        max_overlap: float = 0.2,
    ):
        super().__init__(
            metric=metric,
            max_entries=max_entries,
            min_fill=min_fill,
            reinsert_fraction=reinsert_fraction,
        )
        if not 0.0 < max_overlap <= 1.0:
            raise ValidationError("max_overlap must be in (0, 1]")
        self.max_overlap = float(max_overlap)
        self._supernode_capacity: dict = {}

    # -- overflow policy -----------------------------------------------------

    def _capacity(self, node: _RNode) -> int:
        if node.is_super:
            return self._supernode_capacity.get(id(node), self.max_entries)
        return self.max_entries

    def _split_node(self, node: _RNode) -> Optional[_RNode]:
        """Attempt a topological split; fall back to a supernode when the
        best split's overlap fraction exceeds ``max_overlap``.

        The overlap fraction is *dimension-normalized*: the d-th root of
        vol(intersection) / vol(union). Raw volume ratios vanish
        exponentially with dimension (any two high-dimensional MBRs have
        near-zero volume ratio even when they overlap in every axis), so
        the d-th root — the geometric-mean per-axis overlap — is what
        keeps the X-tree's criterion meaningful across dimensions.
        """
        left, right = self._choose_split(node.entries)
        l_lo, l_hi = self._entries_mbr(left)
        r_lo, r_hi = self._entries_mbr(right)
        u_lo, u_hi = mbr_union(l_lo, l_hi, r_lo, r_hi)
        union_area = mbr_area(u_lo, u_hi)
        overlap = mbr_overlap(l_lo, l_hi, r_lo, r_hi)
        if union_area > 0 and overlap > 0:
            fraction = float((overlap / union_area) ** (1.0 / len(u_lo)))
        elif overlap > 0:
            fraction = 1.0
        else:
            fraction = 0.0
        if fraction > self.max_overlap:
            # Refuse the split: extend this node into a supernode whose
            # capacity grows by one block each time it overflows again.
            obs.incr("index.supernode_overflows")
            node.is_super = True
            current = self._supernode_capacity.get(id(node), self.max_entries)
            self._supernode_capacity[id(node)] = current + self.max_entries
            return None
        node.entries = left
        sibling = _RNode(is_leaf=node.is_leaf)
        sibling.entries = right
        if node.is_super:
            # A successful split dissolves the supernode.
            node.is_super = False
            self._supernode_capacity.pop(id(node), None)
        return sibling

    # -- diagnostics -----------------------------------------------------------

    def supernode_count(self) -> int:
        """Number of supernodes currently in the tree (high-d indicator)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_super:
                count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return count

    def supernode_fraction(self) -> float:
        """Fraction of nodes that are supernodes; ~0 in low d, grows with d."""
        total = self.node_count()
        return self.supernode_count() / total if total else 0.0
