"""k-NN index substrates (Section 7.4 of the paper).

The LOF computation is index-agnostic: the materialization step issues
one k-NN query per object against any access method implementing the
:class:`NNIndex` contract. This package ships the full family the paper
discusses:

========== ============================================ =====================
name       class                                        paper role
========== ============================================ =====================
"brute"    :class:`BruteForceIndex`                     sequential scan, O(n) per query
"grid"     :class:`GridIndex`                           low-d, ~O(1) per query
"kdtree"   :class:`KDTreeIndex`                         medium-d tree index
"balltree" :class:`BallTreeIndex`                       metric-tree alternative
"rstar"    :class:`RStarTreeIndex`                      R*-tree (X-tree ancestor)
"xtree"    :class:`XTreeIndex`                          the paper's index [4]
"vafile"   :class:`VAFileIndex`                         high-d scan variant [21]
"mtree"    :class:`MTreeIndex`                          metric-only access method
========== ============================================ =====================

Use :func:`make_index` to construct one by name.
"""

from .argkmin import argkmin_self, argkmin_with_ties
from .base import (
    Neighborhood,
    NNIndex,
    QueryStats,
    available_indexes,
    make_index,
    register_index,
)
from .balltree import BallTreeIndex
from .brute import BruteForceIndex
from .bulk import BulkRTreeIndex
from .grid import GridIndex
from .kdtree import KDTreeIndex
from .metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    get_metric,
)
from .mtree import MTreeIndex
from .rstartree import RStarTreeIndex
from .vafile import VAFileIndex
from .xtree import XTreeIndex

__all__ = [
    "argkmin_self",
    "argkmin_with_ties",
    "Neighborhood",
    "NNIndex",
    "QueryStats",
    "available_indexes",
    "make_index",
    "register_index",
    "BallTreeIndex",
    "BruteForceIndex",
    "BulkRTreeIndex",
    "GridIndex",
    "KDTreeIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "VAFileIndex",
    "XTreeIndex",
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "get_metric",
]
