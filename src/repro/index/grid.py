"""Grid index for low-dimensional data.

Section 7.4: "For low-dimensional data, we can use a grid based approach
which can answer k-nn queries in constant time, leading to a complexity of
O(n) for the materialization step."

The bounding box of the dataset is cut into a lattice of rectangular
cells — one edge length *per dimension*, each dimension split into the
same number of slots — sized so a cell holds a constant expected number
of points. Rectangular (rather than square) cells keep the lattice
small even when feature scales differ by orders of magnitude. A k-NN
query scans the query point's cell and grows concentric shells of cells
outward, stopping as soon as the closest possible distance of the next
shell exceeds the current k-th candidate distance. On roughly uniform
data the number of cells visited is independent of n.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ValidationError
from .base import KBestHeap, Neighborhood, NNIndex, register_index


@register_index
class GridIndex(NNIndex):
    """Rectangular-lattice index with shell-expansion k-NN search.

    Parameters
    ----------
    points_per_cell : target expected occupancy used to pick the number
        of lattice slots per dimension. The default of 4 keeps cells
        small enough to prune yet large enough that shells fill quickly.
    """

    name = "grid"

    def __init__(self, metric="euclidean", points_per_cell: float = 4.0):
        super().__init__(metric=metric)
        if points_per_cell <= 0:
            raise ValidationError("points_per_cell must be > 0")
        self.points_per_cell = float(points_per_cell)
        self._cells: Dict[Tuple[int, ...], np.ndarray] = {}
        self._origin: Optional[np.ndarray] = None
        self._edges: Optional[np.ndarray] = None  # (d,) per-dimension edge

    def _build(self, X: np.ndarray) -> None:
        n, d = X.shape
        lo = X.min(axis=0)
        hi = X.max(axis=0)
        extent = np.where(hi > lo, hi - lo, 1.0)
        target_cells = max(1.0, n / self.points_per_cell)
        slots = max(1, int(np.ceil(target_cells ** (1.0 / d))))
        # A hair of slack so the maximal coordinate maps inside the last
        # slot rather than spilling into slot `slots`.
        self._edges = extent / slots * (1.0 + 1e-12)
        self._origin = lo
        coords = np.floor((X - lo) / self._edges).astype(int)
        buckets: Dict[Tuple[int, ...], List[int]] = {}
        for i in range(n):
            buckets.setdefault(tuple(coords[i]), []).append(i)
        self._cells = {key: np.array(ids, dtype=int) for key, ids in buckets.items()}
        keys = np.array(list(self._cells), dtype=int)
        self._lattice_lo = keys.min(axis=0)
        self._lattice_hi = keys.max(axis=0)
        self._min_edge = float(self._edges.min())

    # -- helpers ---------------------------------------------------------

    def _cell_of(self, q: np.ndarray) -> Tuple[int, ...]:
        return tuple(np.floor((q - self._origin) / self._edges).astype(int))

    def _cell_min_distance(self, q: np.ndarray, cell: Tuple[int, ...]) -> float:
        lo = self._origin + np.array(cell) * self._edges
        hi = lo + self._edges
        return self.metric.min_distance_to_rect(q, lo, hi)

    def _shell_min_distance(self, shell_radius: int) -> float:
        """Smallest possible distance from any in-lattice query point to
        a cell at lattice (Chebyshev) distance ``shell_radius``: at
        least ``shell_radius - 1`` full cell edges along some axis."""
        return max(0, shell_radius - 1) * self._min_edge

    def _shell(self, center: Tuple[int, ...], radius: int):
        """Yield each cell at Chebyshev distance exactly ``radius`` once.

        Enumerates the faces of the lattice cube directly — O(radius^(d-1))
        cells — rather than filtering the full (2r+1)^d cube, which
        matters when one dimension needs many shells.
        """
        d = len(center)
        if radius == 0:
            yield center
            return
        for axis in range(d):
            for sign in (-radius, radius):
                ranges = []
                for j in range(d):
                    if j < axis:
                        # Earlier axes strictly inside: avoids yielding
                        # corner cells once per touching face.
                        ranges.append(range(-radius + 1, radius))
                    elif j == axis:
                        ranges.append((sign,))
                    else:
                        ranges.append(range(-radius, radius + 1))
                for offsets in itertools.product(*ranges):
                    yield tuple(c + o for c, o in zip(center, offsets))

    def _shell_intersects_lattice(self, center: Tuple[int, ...], radius: int) -> bool:
        """True if some occupied cell could lie at this shell distance."""
        lo_gap = np.array(center) - self._lattice_hi
        hi_gap = self._lattice_lo - np.array(center)
        nearest = int(np.max(np.maximum(np.maximum(lo_gap, hi_gap), 0)))
        farthest = int(
            np.max(
                np.maximum(
                    np.abs(self._lattice_lo - np.array(center)),
                    np.abs(self._lattice_hi - np.array(center)),
                )
            )
        )
        return nearest <= radius <= farthest

    def _scan_cell(self, cell, q, exclude):
        ids = self._cells.get(cell)
        if ids is None:
            return None
        self._visit_node()
        if exclude is not None:
            ids = ids[ids != exclude]
            if len(ids) == 0:
                return None
        dists = self.metric.pairwise_to_point(self._X[ids], q)
        self.stats.distance_evaluations += len(ids)
        return ids, dists

    # -- queries ---------------------------------------------------------

    def _query(self, q, k, exclude):
        center = self._cell_of(q)
        center_arr = np.array(center, dtype=int)
        best = KBestHeap(k)
        max_shells = 1 + int(
            max(
                np.max(np.abs(self._lattice_lo - center_arr)),
                np.max(np.abs(self._lattice_hi - center_arr)),
            )
        )
        for shell_radius in range(max_shells + 1):
            if self._shell_min_distance(shell_radius) > best.worst_distance:
                break
            if not self._shell_intersects_lattice(center, shell_radius):
                continue
            for cell in self._shell(center, shell_radius):
                scanned = self._scan_cell(cell, q, exclude)
                if scanned is None:
                    continue
                ids, dists = scanned
                best.consider_many(dists, ids)
        return self._sort_result(*best.result())

    def _query_radius(self, q, radius, exclude):
        center = self._cell_of(q)
        center_arr = np.array(center, dtype=int)
        max_shells = 1 + int(
            max(
                np.max(np.abs(self._lattice_lo - center_arr)),
                np.max(np.abs(self._lattice_hi - center_arr)),
            )
        )
        out_ids: List[np.ndarray] = []
        out_dists: List[np.ndarray] = []
        for shell_radius in range(max_shells + 1):
            if self._shell_min_distance(shell_radius) > radius:
                break
            if not self._shell_intersects_lattice(center, shell_radius):
                continue
            for cell in self._shell(center, shell_radius):
                if self._cell_min_distance(q, cell) > radius:
                    continue
                scanned = self._scan_cell(cell, q, exclude)
                if scanned is None:
                    continue
                ids, dists = scanned
                mask = dists <= radius
                out_ids.append(ids[mask])
                out_dists.append(dists[mask])
        if out_ids:
            ids = np.concatenate(out_ids)
            dists = np.concatenate(out_dists)
        else:
            ids = np.empty(0, dtype=int)
            dists = np.empty(0)
        return self._sort_result(ids, dists)
