"""R*-tree with forced reinsertion and topological split.

The paper's performance experiments (Section 7.4) run k-NN queries
against "a variant of the X-tree" [4], which is itself an R*-tree
descendant. This module implements the full dynamic R*-tree of
Beckmann et al.:

* ``ChooseSubtree`` — minimal overlap enlargement at the leaf level,
  minimal area enlargement above it;
* ``OverflowTreatment`` — forced reinsertion of the 30% of entries
  farthest from the node centroid, once per level per insertion;
* topological split — split axis chosen by minimal margin sum, split
  index by minimal overlap (area as tie-break).

k-NN queries run best-first over MBR lower bounds (Hjaltason &
Samet), which is exact for any metric providing rectangle bounds.

:class:`repro.index.xtree.XTreeIndex` subclasses this tree and swaps the
overflow policy for supernode creation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import SpatialIndexError, ValidationError
from .base import KBestHeap, Neighborhood, NNIndex, register_index


# ---------------------------------------------------------------------------
# MBR helpers (axis-aligned minimum bounding rectangles as (lo, hi) pairs)


def mbr_of_points(pts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return pts.min(axis=0), pts.max(axis=0)


def mbr_union(a_lo, a_hi, b_lo, b_hi) -> Tuple[np.ndarray, np.ndarray]:
    return np.minimum(a_lo, b_lo), np.maximum(a_hi, b_hi)


def mbr_area(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.prod(hi - lo))


def mbr_margin(lo: np.ndarray, hi: np.ndarray) -> float:
    """Sum of edge lengths (the R* 'margin' criterion)."""
    return float(np.sum(hi - lo))


def mbr_overlap(a_lo, a_hi, b_lo, b_hi) -> float:
    """Area of the intersection of two MBRs (0 if disjoint)."""
    lo = np.maximum(a_lo, b_lo)
    hi = np.minimum(a_hi, b_hi)
    edge = hi - lo
    if np.any(edge < 0):
        return 0.0
    return float(np.prod(edge))


def mbr_enlargement(lo, hi, add_lo, add_hi) -> float:
    """Area increase of (lo, hi) when it must also cover (add_lo, add_hi)."""
    u_lo, u_hi = mbr_union(lo, hi, add_lo, add_hi)
    return mbr_area(u_lo, u_hi) - mbr_area(lo, hi)


# ---------------------------------------------------------------------------
# tree nodes


class _Entry:
    """A node slot: either a data point (leaf) or a child node (internal)."""

    __slots__ = ("lo", "hi", "point_id", "child")

    def __init__(self, lo, hi, point_id: Optional[int] = None, child=None):
        self.lo = lo
        self.hi = hi
        self.point_id = point_id
        self.child: Optional[_RNode] = child

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0


class _RNode:
    __slots__ = ("is_leaf", "entries", "is_super")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[_Entry] = []
        self.is_super = False  # used by the X-tree subclass

    def mbr(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.entries:
            raise SpatialIndexError("empty node has no MBR")
        lo = self.entries[0].lo
        hi = self.entries[0].hi
        for entry in self.entries[1:]:
            lo, hi = mbr_union(lo, hi, entry.lo, entry.hi)
        return lo, hi


@register_index
class RStarTreeIndex(NNIndex):
    """Dynamic R*-tree supporting exact k-NN and radius queries.

    Parameters
    ----------
    max_entries : node capacity M (default 16).
    min_fill : minimum fill fraction m/M (default 0.4, the R* choice).
    reinsert_fraction : share of entries force-reinserted on first
        overflow at a level (default 0.3).
    """

    name = "rstar"

    def __init__(
        self,
        metric="euclidean",
        max_entries: int = 16,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ):
        super().__init__(metric=metric)
        if max_entries < 4:
            raise ValidationError("max_entries must be >= 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValidationError("min_fill must be in (0, 0.5]")
        if not 0.0 < reinsert_fraction < 1.0:
            raise ValidationError("reinsert_fraction must be in (0, 1)")
        self.max_entries = int(max_entries)
        self.min_entries = max(2, int(np.floor(max_entries * min_fill)))
        self.reinsert_count = max(1, int(np.floor(max_entries * reinsert_fraction)))
        self._root: Optional[_RNode] = None
        self._height = 1

    # -- construction ------------------------------------------------------

    def _build(self, X: np.ndarray) -> None:
        self._root = _RNode(is_leaf=True)
        self._height = 1
        for i in range(X.shape[0]):
            self._insert_point(i)

    def _insert_point(self, point_id: int) -> None:
        pt = self._X[point_id]
        entry = _Entry(lo=pt.copy(), hi=pt.copy(), point_id=point_id)
        # One forced-reinsert pass per level per insertion (R* rule);
        # reinsertion indices are levels counted from the leaves.
        self._reinserted_levels = set()
        self._insert_entry(entry, target_level=0)

    def _insert_entry(self, entry: _Entry, target_level: int) -> None:
        path = self._choose_path(entry, target_level)
        node = path[-1]
        node.entries.append(entry)
        self._handle_overflow(path, target_level)
        self._adjust_path_mbrs(path)

    def _choose_path(self, entry: _Entry, target_level: int) -> List[_RNode]:
        """Descend from the root to the node at ``target_level`` that
        should receive ``entry`` (level 0 = leaves)."""
        path = [self._root]
        level = self._height - 1
        node = self._root
        while level > target_level:
            node = self._choose_subtree(node, entry, leaf_children=(level == target_level + 1))
            path.append(node)
            level -= 1
        return path

    def _choose_subtree(self, node: _RNode, entry: _Entry, leaf_children: bool) -> _RNode:
        best = None
        best_key = None
        for candidate in node.entries:
            enlargement = mbr_enlargement(candidate.lo, candidate.hi, entry.lo, entry.hi)
            area = mbr_area(candidate.lo, candidate.hi)
            if leaf_children:
                # R*: minimize overlap enlargement among leaf children.
                u_lo, u_hi = mbr_union(candidate.lo, candidate.hi, entry.lo, entry.hi)
                overlap_before = 0.0
                overlap_after = 0.0
                for other in node.entries:
                    if other is candidate:
                        continue
                    overlap_before += mbr_overlap(candidate.lo, candidate.hi, other.lo, other.hi)
                    overlap_after += mbr_overlap(u_lo, u_hi, other.lo, other.hi)
                key = (overlap_after - overlap_before, enlargement, area)
            else:
                key = (enlargement, area)
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        return best.child

    def _handle_overflow(self, path: List[_RNode], level: int) -> None:
        node = path[-1]
        if len(node.entries) <= self._capacity(node):
            return
        if level not in self._reinserted_levels and node is not self._root:
            self._reinserted_levels.add(level)
            self._reinsert(path, level)
        else:
            self._split_upward(path, level)

    def _capacity(self, node: _RNode) -> int:
        return self.max_entries

    def _reinsert(self, path: List[_RNode], level: int) -> None:
        """Forced reinsertion: evict the entries farthest from the node
        centroid and re-insert them at the same level."""
        node = path[-1]
        lo, hi = node.mbr()
        center = (lo + hi) / 2.0
        dists = [
            (float(np.linalg.norm(entry.center() - center)), i)
            for i, entry in enumerate(node.entries)
        ]
        dists.sort(reverse=True)
        evict_idx = {i for _, i in dists[: self.reinsert_count]}
        evicted = [e for i, e in enumerate(node.entries) if i in evict_idx]
        node.entries = [e for i, e in enumerate(node.entries) if i not in evict_idx]
        self._adjust_path_mbrs(path)
        # "Close reinsert": nearest-evicted first.
        for entry in reversed(evicted):
            self._insert_entry(entry, target_level=level)

    def _split_upward(self, path: List[_RNode], level: int) -> None:
        node = path[-1]
        new_node = self._split_node(node)
        if new_node is None:  # X-tree supernode absorbed the overflow
            return
        if node is self._root:
            new_root = _RNode(is_leaf=False)
            for child in (node, new_node):
                lo, hi = child.mbr()
                new_root.entries.append(_Entry(lo=lo, hi=hi, child=child))
            self._root = new_root
            self._height += 1
            return
        parent = path[-2]
        lo, hi = new_node.mbr()
        parent.entries.append(_Entry(lo=lo, hi=hi, child=new_node))
        self._refresh_child_entry(parent, node)
        if len(parent.entries) > self._capacity(parent):
            self._handle_overflow(path[:-1], level + 1)

    @staticmethod
    def _refresh_child_entry(parent: _RNode, child: _RNode) -> None:
        for entry in parent.entries:
            if entry.child is child:
                entry.lo, entry.hi = child.mbr()
                return
        raise SpatialIndexError("child entry missing from parent")

    def _adjust_path_mbrs(self, path: List[_RNode]) -> None:
        # A forced reinsertion triggered below may have split (and thus
        # re-parented) nodes on the saved path; moved children received
        # fresh MBRs from the split code, so stale links are skipped.
        for parent, child in zip(path[:-1][::-1], path[1:][::-1]):
            if parent.is_leaf:
                continue
            for entry in parent.entries:
                if entry.child is child:
                    if child.entries:
                        entry.lo, entry.hi = child.mbr()
                    break

    # -- topological split ---------------------------------------------------

    def _split_node(self, node: _RNode) -> Optional[_RNode]:
        """R* topological split; returns the newly created sibling."""
        distribution = self._choose_split(node.entries)
        left_entries, right_entries = distribution
        node.entries = left_entries
        sibling = _RNode(is_leaf=node.is_leaf)
        sibling.entries = right_entries
        return sibling

    def _choose_split(
        self, entries: List[_Entry]
    ) -> Tuple[List[_Entry], List[_Entry]]:
        d = len(entries[0].lo)
        m = self.min_entries
        best = None
        best_key = None
        for axis in range(d):
            for sort_key in ("lo", "hi"):
                order = sorted(
                    range(len(entries)),
                    key=lambda i: (
                        getattr(entries[i], sort_key)[axis],
                        getattr(entries[i], "hi" if sort_key == "lo" else "lo")[axis],
                    ),
                )
                margin_sum = 0.0
                candidates = []
                for split_at in range(m, len(entries) - m + 1):
                    left = [entries[i] for i in order[:split_at]]
                    right = [entries[i] for i in order[split_at:]]
                    l_lo, l_hi = self._entries_mbr(left)
                    r_lo, r_hi = self._entries_mbr(right)
                    margin_sum += mbr_margin(l_lo, l_hi) + mbr_margin(r_lo, r_hi)
                    overlap = mbr_overlap(l_lo, l_hi, r_lo, r_hi)
                    area = mbr_area(l_lo, l_hi) + mbr_area(r_lo, r_hi)
                    candidates.append((overlap, area, left, right))
                # Axis chosen by minimal total margin; distribution within
                # the axis by minimal overlap then minimal area.
                candidates.sort(key=lambda c: (c[0], c[1]))
                overlap, area, left, right = candidates[0]
                key = (margin_sum, overlap, area)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (left, right)
        return best

    @staticmethod
    def _entries_mbr(entries: List[_Entry]) -> Tuple[np.ndarray, np.ndarray]:
        lo = entries[0].lo
        hi = entries[0].hi
        for entry in entries[1:]:
            lo, hi = mbr_union(lo, hi, entry.lo, entry.hi)
        return lo, hi

    # -- queries -------------------------------------------------------------

    def _query(self, q, k, exclude):
        root_lo, root_hi = self._root.mbr()
        frontier: List = [(self.metric.min_distance_to_rect(q, root_lo, root_hi), 0, self._root)]
        best = KBestHeap(k)
        counter = 1
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > best.worst_distance:
                break
            self._visit_node()
            if node.is_leaf:
                for entry in node.entries:
                    if exclude is not None and entry.point_id == exclude:
                        continue
                    dist = self.metric.distance(q, self._X[entry.point_id])
                    self.stats.distance_evaluations += 1
                    best.consider(dist, entry.point_id)
            else:
                for entry in node.entries:
                    child_bound = self.metric.min_distance_to_rect(q, entry.lo, entry.hi)
                    if child_bound <= best.worst_distance:
                        heapq.heappush(frontier, (child_bound, counter, entry.child))
                        counter += 1
        return self._sort_result(*best.result())

    def _query_radius(self, q, radius, exclude):
        out_ids: List[int] = []
        out_dists: List[float] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._visit_node()
            if node.is_leaf:
                for entry in node.entries:
                    if exclude is not None and entry.point_id == exclude:
                        continue
                    dist = self.metric.distance(q, self._X[entry.point_id])
                    self.stats.distance_evaluations += 1
                    if dist <= radius:
                        out_ids.append(entry.point_id)
                        out_dists.append(dist)
            else:
                for entry in node.entries:
                    if self.metric.min_distance_to_rect(q, entry.lo, entry.hi) <= radius:
                        stack.append(entry.child)
        return self._sort_result(np.array(out_ids, dtype=int), np.array(out_dists))

    # -- diagnostics -----------------------------------------------------------

    def node_count(self) -> int:
        """Total number of nodes (used in structural tests)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return count

    def leaf_point_ids(self) -> np.ndarray:
        """All point ids stored in leaves (used to assert no loss)."""
        ids: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                ids.extend(entry.point_id for entry in node.entries)
            else:
                stack.extend(entry.child for entry in node.entries)
        return np.sort(np.array(ids, dtype=int))

    def check_invariants(self) -> None:
        """Validate MBR containment and fill factors; raises on violation."""
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _RNode, is_root: bool) -> Tuple[np.ndarray, np.ndarray]:
        if not node.entries:
            raise SpatialIndexError("empty node")
        if not is_root and not node.is_super and len(node.entries) < self.min_entries:
            raise SpatialIndexError(
                f"underfull node: {len(node.entries)} < {self.min_entries}"
            )
        if node.is_leaf:
            return node.mbr()
        lo = hi = None
        for entry in node.entries:
            c_lo, c_hi = self._check_node(entry.child, is_root=False)
            if np.any(c_lo < entry.lo - 1e-12) or np.any(c_hi > entry.hi + 1e-12):
                raise SpatialIndexError("child MBR exceeds parent entry MBR")
            if lo is None:
                lo, hi = entry.lo, entry.hi
            else:
                lo, hi = mbr_union(lo, hi, entry.lo, entry.hi)
        return lo, hi
