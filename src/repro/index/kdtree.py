"""A kd-tree with best-first k-NN search.

Section 7.4 uses "an index, which provides an average complexity of
O(log n) for k-nn queries" for medium dimensionality. A kd-tree is the
classic main-memory instance of that class; we build it by recursive
median splits on the widest-spread dimension and answer queries with a
branch-and-bound descent that prunes subtrees whose bounding rectangle is
farther than the current k-th candidate distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .base import KBestHeap, Neighborhood, NNIndex, register_index


@dataclass
class _Node:
    """One kd-tree node; leaves hold point ids, internals hold a split."""

    lo: np.ndarray
    hi: np.ndarray
    ids: Optional[np.ndarray] = None  # leaf payload
    split_dim: int = -1
    split_val: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


@register_index
class KDTreeIndex(NNIndex):
    """Exact k-NN via a median-split kd-tree.

    Parameters
    ----------
    leaf_size : points per leaf before splitting stops. Smaller leaves
        prune harder but cost more node visits; 16 is a robust default.
    """

    name = "kdtree"

    def __init__(self, metric="euclidean", leaf_size: int = 16):
        super().__init__(metric=metric)
        if leaf_size < 1:
            leaf_size = 1
        self.leaf_size = int(leaf_size)
        self._root: Optional[_Node] = None

    def _build(self, X: np.ndarray) -> None:
        ids = np.arange(X.shape[0])
        self._root = self._build_node(ids)

    def _build_node(self, ids: np.ndarray) -> _Node:
        pts = self._X[ids]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if len(ids) <= self.leaf_size:
            return _Node(lo=lo, hi=hi, ids=ids)
        spread = hi - lo
        dim = int(np.argmax(spread))
        if spread[dim] == 0.0:
            # All points identical: a split cannot separate them.
            return _Node(lo=lo, hi=hi, ids=ids)
        vals = pts[:, dim]
        median = float(np.median(vals))
        left_mask = vals <= median
        # A median equal to the max value would send everything left;
        # rebalance by splitting strictly below the median instead.
        if left_mask.all():
            left_mask = vals < median
        node = _Node(lo=lo, hi=hi, split_dim=dim, split_val=median)
        node.left = self._build_node(ids[left_mask])
        node.right = self._build_node(ids[~left_mask])
        return node

    # -- search --------------------------------------------------------

    def _leaf_scan(self, node: _Node, q: np.ndarray, exclude: Optional[int]):
        ids = node.ids
        if exclude is not None:
            ids = ids[ids != exclude]
        if len(ids) == 0:
            return ids, np.empty(0)
        dists = self.metric.pairwise_to_point(self._X[ids], q)
        self.stats.distance_evaluations += len(ids)
        return ids, dists

    def _query(self, q, k, exclude):
        # Best-first search: a frontier heap ordered by the minimum
        # possible distance from q to each pending subtree, and a
        # bounded candidate heap of the k best points found so far.
        frontier: List = [(self.metric.min_distance_to_rect(q, self._root.lo, self._root.hi), 0, self._root)]
        best = KBestHeap(k)
        counter = 1
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > best.worst_distance:
                break
            self._visit_node()
            if node.is_leaf:
                ids, dists = self._leaf_scan(node, q, exclude)
                best.consider_many(dists, ids)
            else:
                for child in (node.left, node.right):
                    child_bound = self.metric.min_distance_to_rect(q, child.lo, child.hi)
                    if child_bound <= best.worst_distance:
                        heapq.heappush(frontier, (child_bound, counter, child))
                        counter += 1
        return self._sort_result(*best.result())

    def _query_radius(self, q, radius, exclude):
        out_ids: List[np.ndarray] = []
        out_dists: List[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self.metric.min_distance_to_rect(q, node.lo, node.hi) > radius:
                continue
            self._visit_node()
            if node.is_leaf:
                ids, dists = self._leaf_scan(node, q, exclude)
                mask = dists <= radius
                out_ids.append(ids[mask])
                out_dists.append(dists[mask])
            else:
                stack.append(node.left)
                stack.append(node.right)
        if out_ids:
            ids = np.concatenate(out_ids)
            dists = np.concatenate(out_dists)
        else:
            ids = np.empty(0, dtype=int)
            dists = np.empty(0)
        return self._sort_result(ids, dists)
