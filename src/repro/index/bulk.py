"""Sort-Tile-Recursive (STR) bulk loading for the R-tree family.

Leutenegger, López & Edgington's STR packing builds an R-tree for a
*static* dataset in one pass: sort by the first dimension, cut into
vertical slabs, sort each slab by the second dimension, tile, and so on
— producing fully-packed leaves with near-minimal overlap, far better
than repeated insertion for the read-only workloads the LOF
materialization step represents (build once, query n times).

:class:`BulkRTreeIndex` reuses the R*-tree's node structures and query
machinery; only construction differs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import ValidationError
from .base import register_index
from .rstartree import RStarTreeIndex, _Entry, _RNode


@register_index
class BulkRTreeIndex(RStarTreeIndex):
    """R-tree built by STR packing (static datasets).

    Parameters
    ----------
    max_entries : node capacity (leaves are packed to this fill).
    """

    name = "bulk-rtree"

    def __init__(self, metric="euclidean", max_entries: int = 16):
        # min_fill/reinsertion are irrelevant for a packed static tree;
        # the R* defaults are kept so inherited validation still holds.
        super().__init__(metric=metric, max_entries=max_entries)

    def _build(self, X: np.ndarray) -> None:
        n, d = X.shape
        leaf_entries = [
            _Entry(lo=X[i].copy(), hi=X[i].copy(), point_id=i) for i in range(n)
        ]
        leaves = self._str_pack(leaf_entries, d, level_is_leaf=True)
        level: List[_RNode] = leaves
        while len(level) > 1:
            parent_entries = []
            for node in level:
                lo, hi = node.mbr()
                parent_entries.append(_Entry(lo=lo, hi=hi, child=node))
            level = self._str_pack(parent_entries, d, level_is_leaf=False)
        self._root = level[0]
        # Height bookkeeping for the inherited insertion path (unused
        # for static trees but kept consistent).
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.entries[0].child
        self._height = height

    def _str_pack(
        self, entries: List[_Entry], d: int, level_is_leaf: bool
    ) -> List[_RNode]:
        """Pack ``entries`` into nodes of ``max_entries`` via STR tiling."""
        capacity = self.max_entries
        n = len(entries)
        n_nodes = int(np.ceil(n / capacity))
        if n_nodes <= 1:
            node = _RNode(is_leaf=level_is_leaf)
            node.entries = list(entries)
            return [node]

        def center(entry: _Entry, axis: int) -> float:
            return float((entry.lo[axis] + entry.hi[axis]) / 2.0)

        def tile(chunk: List[_Entry], axis: int) -> List[List[_Entry]]:
            if axis >= d - 1 or len(chunk) <= capacity:
                chunk = sorted(chunk, key=lambda e: center(e, min(axis, d - 1)))
                return [
                    chunk[i : i + capacity] for i in range(0, len(chunk), capacity)
                ]
            chunk = sorted(chunk, key=lambda e: center(e, axis))
            nodes_here = int(np.ceil(len(chunk) / capacity))
            # Number of slabs along this axis: the STR formula
            # ceil(nodes^(1/remaining_dims)).
            remaining = d - axis
            slabs = int(np.ceil(nodes_here ** (1.0 / remaining)))
            slab_size = int(np.ceil(len(chunk) / slabs))
            out: List[List[_Entry]] = []
            for start in range(0, len(chunk), slab_size):
                out.extend(tile(chunk[start : start + slab_size], axis + 1))
            return out

        groups = tile(list(entries), 0)
        nodes = []
        for group in groups:
            node = _RNode(is_leaf=level_is_leaf)
            node.entries = group
            nodes.append(node)
        return nodes

    # A packed static tree does not support incremental insertion with
    # its fill guarantees; direct users should rebuild instead.
    def _insert_point(self, point_id: int) -> None:  # pragma: no cover
        raise ValidationError(
            "BulkRTreeIndex is static; refit the index to add points"
        )

    def check_invariants(self) -> None:
        """Packed trees may have one underfull node per level (the
        remainder); check containment only."""
        self._check_containment(self._root)

    def _check_containment(self, node: _RNode) -> None:
        from ..exceptions import SpatialIndexError

        if node.is_leaf:
            return
        for entry in node.entries:
            c_lo, c_hi = entry.child.mbr()
            if np.any(c_lo < entry.lo - 1e-12) or np.any(c_hi > entry.hi + 1e-12):
                raise SpatialIndexError("child MBR exceeds parent entry MBR")
            self._check_containment(entry.child)
