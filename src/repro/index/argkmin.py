"""Chunked, cache-aware argkmin — the k-NN front door's compute engine.

The paper's step 1 (Section 7.4) is one k-NN query per object; on the
sequential-scan substrate that is an argkmin over a distance matrix that
does not fit in memory once n is large (n = 100k needs 80 GB at
float64). This module computes the same tie-inclusive selection from
fixed-size X/Y tiles sized to a configurable cache budget, in the style
of scikit-learn's ``_pairwise_distances_reduction``:

* **Tiling.** Queries are cut into row chunks (``x_chunk``) and the
  corpus into column chunks (``y_chunk``); one distance tile of
  ``x_chunk * y_chunk * 8`` bytes is materialized at a time, so peak
  temporary memory is O(chunk · chunk), never O(n²).
* **One tile kernel.** Per-tile distances come from
  :meth:`repro.index.metrics.Metric.tile_kernel` — for Euclidean the
  expanded-form BLAS path with float64 accumulation (float32 inputs are
  upcast once) and the exact-duplicate zero-snap, shared bit-for-bit
  with the whole-matrix path.
* **Tie-aware merge.** Per-chunk k-best candidates are merged with
  Definition 4 semantics: after each tile, every candidate at distance
  not greater than the running k-distance (``tie_threshold``) survives.
  The running threshold is non-increasing and ends at the global
  k-distance, so the final candidate pool IS the tie-inclusive
  neighborhood — proved bit-identical to
  :func:`repro.index.batch.select_tie_inclusive` on the whole matrix by
  the property suite in ``tests/index/test_argkmin.py``.
* **Thread parallelism.** Row chunks fan out over
  :func:`repro.core.parallel.map_threaded` (no fork pool): the per-tile
  work is BLAS/NumPy kernels that release the GIL, and threads share
  the dataset and the obs registry for free.

The old whole-matrix path survives as ``strategy="whole"`` (one tile
spanning all of Y per row chunk — literally the classic
``pairwise`` + ``select_tie_inclusive`` code path); ``strategy="auto"``
picks it whenever the full row-chunk × n slab fits the tile budget, so
small problems keep their historical kernel-call counts.

Instrumentation: ``argkmin.tiles`` counts distance tiles,
``argkmin.tile_bytes`` records the largest single tile allocated per
engine call (the memory-envelope counter asserted by
``tests/core/test_memory_budget.py``), ``argkmin.strategy_whole`` /
``argkmin.strategy_chunked`` count heuristic decisions, and the
``argkmin.run`` span wraps the whole selection.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from ..exceptions import ValidationError
from .batch import apply_exclusions, scatter_padded, select_tie_inclusive, tie_threshold
from .metrics import get_metric

__all__ = [
    "DEFAULT_TILE_BYTES",
    "DEFAULT_X_CHUNK",
    "argkmin_with_ties",
    "argkmin_self",
]

#: Default per-tile byte budget. Sized like a generous L2/L3 slice: big
#: enough that every pre-existing small-n code path (block_size 512 at
#: n <= 2000) resolves to the whole-matrix strategy and keeps its
#: historical kernel-call counts, small enough that n = 100k runs in a
#: few-MiB temporary footprint instead of 80 GB.
DEFAULT_TILE_BYTES = 8 << 20  # 8 MiB

#: Default query-row chunk when the caller does not pin one.
DEFAULT_X_CHUNK = 256

_STRATEGIES = ("auto", "whole", "chunked")


def _check_matrix(A, name: str) -> np.ndarray:
    A = np.asarray(A)
    if A.dtype not in (np.float32, np.float64):
        A = A.astype(np.float64)
    if A.ndim != 2 or A.shape[0] < 1 or A.shape[1] < 1:
        raise ValidationError(
            f"{name} must be a non-empty 2-D array, got shape {A.shape}"
        )
    if not np.isfinite(A).all():
        raise ValidationError(f"{name} must be finite (no NaN/inf entries)")
    return A


def _resolve_plan(
    m: int,
    n: int,
    strategy: str,
    x_chunk: Optional[int],
    y_chunk: Optional[int],
    tile_bytes: Optional[int],
) -> Tuple[str, int, int, int]:
    """Pick (strategy, x_chunk, y_chunk, tile_bytes) for an (m, n) problem."""
    if strategy not in _STRATEGIES:
        raise ValidationError(
            f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
        )
    tile_bytes = DEFAULT_TILE_BYTES if tile_bytes is None else int(tile_bytes)
    if tile_bytes < 8:
        raise ValidationError(f"tile_bytes must be >= 8, got {tile_bytes}")
    for name, value in (("x_chunk", x_chunk), ("y_chunk", y_chunk)):
        if value is not None and (not isinstance(value, (int, np.integer)) or value < 1):
            raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    if strategy == "auto":
        # The heuristic: fall back to the classic whole-matrix path when
        # the full row-chunk × n float64 slab fits the tile budget.
        probe_rows = min(m, x_chunk) if x_chunk is not None else m
        strategy = "whole" if probe_rows * n * 8 <= tile_bytes else "chunked"
    if strategy == "whole":
        xc = min(m, x_chunk) if x_chunk is not None else m
        yc = n
    else:
        xc = min(m, x_chunk) if x_chunk is not None else min(m, DEFAULT_X_CHUNK)
        yc = min(n, y_chunk) if y_chunk is not None else max(
            1, min(n, tile_bytes // (8 * xc))
        )
    return strategy, int(xc), int(yc), tile_bytes


def _chunk_argkmin(
    tile,
    x0: int,
    x1: int,
    n: int,
    k: int,
    y_chunk: int,
    exclude: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Tie-inclusive argkmin of query rows [x0, x1) against all of Y.

    Returns the chunk's CSR triple plus the largest tile (bytes) it
    materialized. Pure array transform over the instrumented ``tile``
    closure — thread-safe by construction (no shared mutable state
    beyond additive obs counters).
    """
    m_c = x1 - x0
    excl = exclude[x0:x1] if exclude is not None else None

    if y_chunk >= n:
        # Single-tile row chunk: the classic whole-matrix selection,
        # unchanged from the pre-chunking fast path.
        D = tile(x0, x1, 0, n)
        obs.incr("argkmin.tiles")
        if excl is not None:
            apply_exclusions(D, excl)
        flat_ids, flat_dists, counts = select_tie_inclusive(D, k)
        return flat_ids, flat_dists, counts, D.nbytes

    peak = 0
    cand_d = np.empty((m_c, 0), dtype=np.float64)
    cand_i = np.empty((m_c, 0), dtype=np.int64)
    for y0 in range(0, n, y_chunk):
        y1 = min(y0 + y_chunk, n)
        D = tile(x0, x1, y0, y1)
        obs.incr("argkmin.tiles")
        peak = max(peak, D.nbytes)
        if excl is not None:
            apply_exclusions(D, excl, col_offset=y0)
        ids = np.broadcast_to(np.arange(y0, y1, dtype=np.int64), D.shape)
        C = np.concatenate([cand_d, D], axis=1)
        I = np.concatenate([cand_i, ids], axis=1)
        if C.shape[1] > k:
            # Definition 4 merge: keep everything within the running
            # k-distance. The threshold is non-increasing across tiles,
            # so no entry of the final neighborhood is ever dropped;
            # entries at exactly the threshold (ties) all survive.
            # While a row still has fewer than k finite candidates the
            # threshold is inf and everything valid is retained.
            kth = tie_threshold(C, k)
            keep = (C <= kth[:, None]) & (I >= 0)
        else:
            keep = I >= 0
        counts = keep.sum(axis=1).astype(np.int64)
        width = int(counts.max()) if m_c else 0
        cand_d = np.full((m_c, width), np.inf, dtype=np.float64)
        cand_i = np.full((m_c, width), -1, dtype=np.int64)
        scatter_padded(cand_i, cand_d, 0, I[keep], C[keep], counts)

    # The candidate pool is now exactly the tie-inclusive neighborhood
    # of every row; emit it in select_tie_inclusive's (row, distance,
    # id) CSR order.
    keep = cand_i >= 0
    counts = keep.sum(axis=1).astype(np.int64)
    flat_d = cand_d[keep]
    flat_i = cand_i[keep]
    rows = np.repeat(np.arange(m_c, dtype=np.int64), counts)
    order = np.lexsort((flat_i, flat_d, rows))
    return flat_i[order], flat_d[order], counts, peak


def argkmin_with_ties(
    Q,
    Y,
    k: int,
    *,
    metric="euclidean",
    exclude=None,
    strategy: str = "auto",
    x_chunk: Optional[int] = None,
    y_chunk: Optional[int] = None,
    tile_bytes: Optional[int] = None,
    n_threads=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tie-inclusive k-nearest selection of every row of ``Q`` against ``Y``.

    Parameters
    ----------
    Q : (m, d) query rows; float32 or float64 (float32 is upcast once,
        all accumulation is float64).
    Y : (n, d) corpus rows; pass the same array object as ``Q`` to share
        the upcast and the norm cache.
    k : neighbors per row (Definition 3's k); rows may return more when
        the k-distance is tied (Definition 4).
    metric : metric name or :class:`~repro.index.metrics.Metric`.
    exclude : optional (m,) global y-ids excluded per row (-1 = none).
    strategy : ``"auto"`` (default) picks ``"whole"`` when the full
        row-chunk × n slab fits ``tile_bytes``, else ``"chunked"``.
    x_chunk, y_chunk : tile geometry overrides; defaults derive
        ``y_chunk`` from the byte budget.
    tile_bytes : per-tile cache budget (default 8 MiB).
    n_threads : row-chunk thread fan-out (``None`` serial, ``-1`` one
        per CPU). Results are bit-identical for every value.

    Returns
    -------
    flat_ids, flat_dists, counts :
        CSR triple in ``(row, distance, id)`` order — the same contract
        as :func:`repro.index.batch.select_tie_inclusive`.
    """
    # Imported lazily: repro.core.__init__ pulls modules that import
    # repro.index back, so a module-level import here would make the
    # "import repro.index first" order a circular-import trap.
    from ..core.parallel import map_threaded, resolve_n_threads

    Q = _check_matrix(Q, "Q")
    Y = Q if Y is Q else _check_matrix(Y, "Y")
    m, n = Q.shape[0], Y.shape[0]
    if Q.shape[1] != Y.shape[1]:
        raise ValidationError(
            f"Q and Y must share a feature width, got {Q.shape[1]} != {Y.shape[1]}"
        )
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.int64)
        if exclude.shape != (m,):
            raise ValidationError(
                f"exclude must have shape ({m},), got {exclude.shape}"
            )
        if np.any(exclude >= n):
            raise ValidationError("exclude entries must be valid y-ids or -1")
        if not np.any(exclude >= 0):
            exclude = None
    available = n - (1 if exclude is not None else 0)
    if not isinstance(k, (int, np.integer)) or isinstance(k, bool) or k < 1:
        raise ValidationError(f"k must be a positive integer, got {k!r}")
    if k > available:
        raise ValidationError(
            f"k={k} exceeds the {available} available neighbors per row"
        )
    k = int(k)

    strategy, xc, yc, _ = _resolve_plan(m, n, strategy, x_chunk, y_chunk, tile_bytes)
    threads = resolve_n_threads(n_threads)
    tile = get_metric(metric).tile_kernel(Q, Y)
    if strategy == "whole":
        obs.incr("argkmin.strategy_whole")
    else:
        obs.incr("argkmin.strategy_chunked")

    x_bounds = [(s, min(s + xc, m)) for s in range(0, m, xc)]

    def run_chunk(bounds: Tuple[int, int]):
        return _chunk_argkmin(tile, bounds[0], bounds[1], n, k, yc, exclude)

    with obs.span("argkmin.run"):
        chunks = map_threaded(run_chunk, x_bounds, threads)

    # The per-call memory envelope: bytes of the largest distance tile
    # any chunk materialized (reduced here, outside the threads, so the
    # counter is a deterministic single increment per engine call).
    obs.incr("argkmin.tile_bytes", max(c[3] for c in chunks))

    if len(chunks) == 1:
        flat_ids, flat_dists, counts, _ = chunks[0]
        return flat_ids, flat_dists, counts
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
        np.concatenate([c[2] for c in chunks]),
    )


def argkmin_self(
    X,
    k: int,
    *,
    metric="euclidean",
    strategy: str = "auto",
    x_chunk: Optional[int] = None,
    y_chunk: Optional[int] = None,
    tile_bytes: Optional[int] = None,
    n_threads=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Self k-NN of every row of ``X`` (diagonal excluded) — the
    materialization step's argkmin. Same contract and knobs as
    :func:`argkmin_with_ties`."""
    X = _check_matrix(X, "X")
    return argkmin_with_ties(
        X,
        X,
        k,
        metric=metric,
        exclude=np.arange(X.shape[0], dtype=np.int64),
        strategy=strategy,
        x_chunk=x_chunk,
        y_chunk=y_chunk,
        tile_bytes=tile_bytes,
        n_threads=n_threads,
    )
