"""Vectorized batch-selection kernels shared by the batched query paths.

The batched front door (:meth:`NNIndex.query_batch_with_ties`) and the
blocked materialization engine (:func:`repro.core.blocked.fast_materialize`)
both reduce to the same primitive: given a block of a distance matrix
``D`` of shape ``(m, n)`` whose excluded entries are already ``inf``,
select every row's tie-inclusive k-distance neighborhood (Definition 4)
in the deterministic ``(distance, id)`` order, without any per-row
Python loop. This module is that primitive, plus the scatter that packs
ragged rows into the padded ``(m, width)`` layout used by
:class:`~repro.core.materialization.MaterializationDB`.

All functions are pure array transforms — no instrumentation, no
validation; callers own both.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def tie_threshold(dists: np.ndarray, k: int) -> np.ndarray:
    """The k-distance (Definition 3) of each row of ``dists``.

    The single shared implementation of the paper's tie cutoff: the k-th
    smallest entry per row, via a partial sort. Works on a 1-D distance
    row (returns a scalar array) or a 2-D ``(m, n)`` block (returns the
    ``(m,)`` per-row thresholds). Excluded entries must already be
    ``inf`` and every row must contain at least ``k`` finite entries.
    """
    return np.partition(dists, k - 1, axis=-1)[..., k - 1]


def tie_inclusive_row(dists: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Tie-inclusive k-distance neighborhood of ONE distance row.

    Returns ``(ids, kth)``: the indices of every entry at distance not
    greater than the k-distance (Definition 4 — so ``len(ids) >= k``),
    sorted by the deterministic ``(distance, id)`` order, plus the
    k-distance itself.
    """
    kth = tie_threshold(dists, k)
    idx = np.flatnonzero(dists <= kth)
    order = np.lexsort((idx, dists[idx]))
    return idx[order], float(kth)


def select_tie_inclusive(D: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tie-inclusive k-nearest selection for every row of ``D`` at once.

    Parameters
    ----------
    D : (m, n) distance block; excluded entries (e.g. each query's own
        diagonal cell) must already be ``inf``.
    k : neighbors per row, ``1 <= k <= n`` and at most the number of
        finite entries in each row.

    Returns
    -------
    flat_ids, flat_dists, counts :
        CSR-style output: row ``i``'s neighborhood is the slice of
        ``flat_ids`` / ``flat_dists`` of length ``counts[i]`` starting at
        ``counts[:i].sum()``, sorted by ``(distance, id)``. Rows can be
        longer than ``k`` exactly when the k-distance is tied.
    """
    # Partial selection of the k-th smallest per row, then a closed-ball
    # mask so equal-distance candidates are all retained (Definition 4).
    kth = tie_threshold(D, k)
    mask = D <= kth[:, None]
    rows, cols = np.nonzero(mask)
    flat_dists = D[mask]
    # One global lexsort replaces m per-row sorts: primary key row,
    # secondary distance, tertiary id — each row ends up internally
    # ordered by (distance, id), identical to the per-query oracle.
    order = np.lexsort((cols, flat_dists, rows))
    counts = mask.sum(axis=1).astype(np.int64)
    return cols[order].astype(np.int64), flat_dists[order], counts


def pack_padded(
    flat_ids: np.ndarray,
    flat_dists: np.ndarray,
    counts: np.ndarray,
    width: int = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scatter CSR rows into the padded (-1 / inf) matrix layout.

    ``width`` defaults to ``counts.max()``; pass a larger value when the
    caller needs a common width across several blocks.
    """
    m = len(counts)
    if width is None:
        width = int(counts.max()) if m else 0
    padded_ids = np.full((m, width), -1, dtype=np.int64)
    padded_dists = np.full((m, width), np.inf, dtype=np.float64)
    scatter_padded(padded_ids, padded_dists, 0, flat_ids, flat_dists, counts)
    return padded_ids, padded_dists


def scatter_padded(
    padded_ids: np.ndarray,
    padded_dists: np.ndarray,
    row_start: int,
    flat_ids: np.ndarray,
    flat_dists: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Write one CSR block into rows ``row_start:row_start+len(counts)``
    of preallocated padded arrays, fully vectorized."""
    if len(flat_ids) == 0:
        return
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Column position of each flat element inside its own row.
    pos = np.arange(len(flat_ids), dtype=np.int64) - np.repeat(offsets[:-1], counts)
    rows = row_start + np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    padded_ids[rows, pos] = flat_ids
    padded_dists[rows, pos] = flat_dists


def apply_exclusions(D: np.ndarray, exclude: np.ndarray, col_offset: int = 0) -> None:
    """Set ``D[i, exclude[i] - col_offset] = inf`` for every row whose
    ``exclude`` entry is a valid id (entries ``< 0`` mean "no exclusion").

    ``col_offset`` supports blocks (or tiles) of a distance matrix whose
    columns start at a global id other than 0 — pass the global
    exclusion ids and the block's column origin. Exclusion targets that
    fall outside ``D``'s column window are ignored: the chunked argkmin
    engine applies the same global exclusion vector to every y-tile, and
    each target belongs to exactly one tile.
    """
    local = exclude - col_offset
    active = np.flatnonzero(
        (exclude >= 0) & (local >= 0) & (local < D.shape[1])
    )
    if len(active):
        D[active, local[active]] = np.inf
