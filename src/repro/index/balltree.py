"""Ball tree with best-first k-NN search.

A metric-tree alternative to the rectangle-based indexes: each node is a
bounding ball (centroid + radius), and pruning uses the triangle
inequality ``d(q, ball) >= d(q, center) - radius``. Balls degrade more
gracefully than rectangles for some metrics and moderately high
dimensions, so this index rounds out the substrate family the performance
experiments sweep over.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .base import KBestHeap, Neighborhood, NNIndex, register_index


@dataclass
class _Ball:
    center: np.ndarray
    radius: float
    ids: Optional[np.ndarray] = None
    left: Optional["_Ball"] = None
    right: Optional["_Ball"] = None

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


@register_index
class BallTreeIndex(NNIndex):
    """Exact k-NN via a ball tree split on the widest-spread dimension."""

    name = "balltree"

    def __init__(self, metric="euclidean", leaf_size: int = 16):
        super().__init__(metric=metric)
        self.leaf_size = max(1, int(leaf_size))
        self._root: Optional[_Ball] = None

    def _build(self, X: np.ndarray) -> None:
        self._root = self._build_node(np.arange(X.shape[0]))

    def _build_node(self, ids: np.ndarray) -> _Ball:
        pts = self._X[ids]
        center = pts.mean(axis=0)
        radius = float(np.max(self.metric.pairwise_to_point(pts, center))) if len(ids) else 0.0
        if len(ids) <= self.leaf_size:
            return _Ball(center=center, radius=radius, ids=ids)
        spread = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spread))
        if spread[dim] == 0.0:
            return _Ball(center=center, radius=radius, ids=ids)
        median = float(np.median(pts[:, dim]))
        left_mask = pts[:, dim] <= median
        if left_mask.all():
            left_mask = pts[:, dim] < median
        node = _Ball(center=center, radius=radius)
        node.left = self._build_node(ids[left_mask])
        node.right = self._build_node(ids[~left_mask])
        return node

    def _ball_min_distance(self, q: np.ndarray, ball: _Ball) -> float:
        return max(0.0, self.metric.distance(q, ball.center) - ball.radius)

    def _leaf_scan(self, node: _Ball, q: np.ndarray, exclude: Optional[int]):
        ids = node.ids
        if exclude is not None:
            ids = ids[ids != exclude]
        if len(ids) == 0:
            return ids, np.empty(0)
        dists = self.metric.pairwise_to_point(self._X[ids], q)
        self.stats.distance_evaluations += len(ids)
        return ids, dists

    def _query(self, q, k, exclude):
        frontier: List = [(self._ball_min_distance(q, self._root), 0, self._root)]
        best = KBestHeap(k)
        counter = 1
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > best.worst_distance:
                break
            self._visit_node()
            if node.is_leaf:
                ids, dists = self._leaf_scan(node, q, exclude)
                best.consider_many(dists, ids)
            else:
                for child in (node.left, node.right):
                    child_bound = self._ball_min_distance(q, child)
                    if child_bound <= best.worst_distance:
                        heapq.heappush(frontier, (child_bound, counter, child))
                        counter += 1
        return self._sort_result(*best.result())

    def _query_radius(self, q, radius, exclude):
        out_ids: List[np.ndarray] = []
        out_dists: List[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._ball_min_distance(q, node) > radius:
                continue
            self._visit_node()
            if node.is_leaf:
                ids, dists = self._leaf_scan(node, q, exclude)
                mask = dists <= radius
                out_ids.append(ids[mask])
                out_dists.append(dists[mask])
            else:
                stack.append(node.left)
                stack.append(node.right)
        if out_ids:
            ids = np.concatenate(out_ids)
            dists = np.concatenate(out_dists)
        else:
            ids = np.empty(0, dtype=int)
            dists = np.empty(0)
        return self._sort_result(ids, dists)
