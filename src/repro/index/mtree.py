"""M-tree: a metric access method (Ciaccia, Patella & Zezula, VLDB'97).

The paper's index discussion (Section 7.4) is phrased over generic
"index structures" answering k-NN queries; the X-tree family needs
coordinate rectangles, but LOF itself only needs a *metric*. The M-tree
closes that gap: it organizes objects purely by distances — each node
stores routing objects with covering radii and distances to the parent
— so it supports any metric the library defines, including ones without
meaningful bounding boxes.

Implementation: insertion chooses the subtree whose routing object is
nearest (minimal radius enlargement as tie-break), splits use the
mM_RAD promotion heuristic with generalized-hyperplane partitioning,
and queries prune with the triangle inequality:

    |d(q, parent) - d(parent, o)| > r(o) + radius  =>  subtree skipped

Distance computations to parents are cached in the entries, giving the
M-tree's signature saving: many candidate distances are eliminated
without ever calling the metric.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ValidationError
from .base import KBestHeap, Neighborhood, NNIndex, register_index


class _MEntry:
    """A slot in an M-tree node.

    Leaf entries hold a point id; internal entries hold a child node,
    a covering radius, and the routing object's id. ``d_parent`` is the
    cached distance to the enclosing node's routing object.
    """

    __slots__ = ("obj_id", "d_parent", "radius", "child")

    def __init__(self, obj_id: int, d_parent: float = 0.0, radius: float = 0.0, child=None):
        self.obj_id = obj_id
        self.d_parent = d_parent
        self.radius = radius
        self.child: Optional[_MNode] = child


class _MNode:
    __slots__ = ("is_leaf", "entries", "parent_obj")

    def __init__(self, is_leaf: bool, parent_obj: Optional[int] = None):
        self.is_leaf = is_leaf
        self.entries: List[_MEntry] = []
        self.parent_obj = parent_obj  # routing object id of the entry above


@register_index
class MTreeIndex(NNIndex):
    """Dynamic M-tree supporting exact k-NN and radius queries.

    Parameters
    ----------
    max_entries : node capacity (default 16; >= 4).
    """

    name = "mtree"

    def __init__(self, metric="euclidean", max_entries: int = 16):
        super().__init__(metric=metric)
        if max_entries < 4:
            raise ValidationError("max_entries must be >= 4")
        self.max_entries = int(max_entries)
        self._root: Optional[_MNode] = None

    # -- distances -----------------------------------------------------------

    def _dist(self, a: int, b: int) -> float:
        self.stats.distance_evaluations += 1
        return self.metric.distance(self._X[a], self._X[b])

    def _dist_to_query(self, q: np.ndarray, obj: int) -> float:
        self.stats.distance_evaluations += 1
        return self.metric.distance(q, self._X[obj])

    # -- construction ----------------------------------------------------------

    def _build(self, X: np.ndarray) -> None:
        self._root = _MNode(is_leaf=True, parent_obj=None)
        for i in range(X.shape[0]):
            self._insert(i)

    def _insert(self, obj: int) -> None:
        path: List[Tuple[_MNode, Optional[_MEntry]]] = []
        node = self._root
        entry_above: Optional[_MEntry] = None
        while not node.is_leaf:
            path.append((node, entry_above))
            best = None
            best_key = None
            for entry in node.entries:
                d = self._dist(obj, entry.obj_id)
                enlargement = max(0.0, d - entry.radius)
                key = (enlargement, d)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (entry, d)
            entry, d = best
            entry.radius = max(entry.radius, d)
            entry_above = entry
            node = entry.child
        d_parent = (
            self._dist(obj, node.parent_obj) if node.parent_obj is not None else 0.0
        )
        node.entries.append(_MEntry(obj_id=obj, d_parent=d_parent))
        if len(node.entries) > self.max_entries:
            self._split(node, path, entry_above)

    def _split(
        self,
        node: _MNode,
        path: List[Tuple[_MNode, Optional[_MEntry]]],
        entry_above: Optional[_MEntry],
    ) -> None:
        entries = node.entries
        # Promotion (mM_RAD, sampled): pick the pair of routing objects
        # minimizing the larger covering radius after partitioning.
        ids = [e.obj_id for e in entries]
        # Distance matrix among the node's objects (small: <= M+1).
        m = len(ids)
        D = np.zeros((m, m))
        for a in range(m):
            for b in range(a + 1, m):
                D[a, b] = D[b, a] = self._dist(ids[a], ids[b])
        best = None
        best_key = None
        for a in range(m):
            for b in range(a + 1, m):
                # Generalized hyperplane: each object goes to the nearer
                # promoted routing object.
                to_a = D[:, a] <= D[:, b]
                if to_a.all() or (~to_a).all():
                    continue
                r_a = D[to_a, a].max()
                r_b = D[~to_a, b].max()
                key = (max(r_a, r_b), r_a + r_b)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (a, b, to_a)
        if best is None:
            # Every pairwise distance is identical (e.g. duplicated
            # points): no hyperplane separates anything. Fall back to a
            # balanced arbitrary partition; radii stay correct because
            # all distances are equal.
            half = np.zeros(m, dtype=bool)
            half[: m // 2] = True
            best = (0, m - 1, half)
        a, b, to_a = best
        left = _MNode(is_leaf=node.is_leaf, parent_obj=ids[a])
        right = _MNode(is_leaf=node.is_leaf, parent_obj=ids[b])
        for pos, entry in enumerate(entries):
            target, routing = (left, a) if to_a[pos] else (right, b)
            entry.d_parent = D[pos, routing]
            target.entries.append(entry)
            # Note: entry.child's parent routing object is entry.obj_id,
            # which a split never changes — only d_parent is rewritten.
        r_left = max(
            (e.d_parent + e.radius for e in left.entries), default=0.0
        )
        r_right = max(
            (e.d_parent + e.radius for e in right.entries), default=0.0
        )

        if entry_above is None:
            # Splitting the root: grow the tree.
            new_root = _MNode(is_leaf=False, parent_obj=None)
            new_root.entries.append(
                _MEntry(obj_id=ids[a], d_parent=0.0, radius=r_left, child=left)
            )
            new_root.entries.append(
                _MEntry(obj_id=ids[b], d_parent=0.0, radius=r_right, child=right)
            )
            self._root = new_root
            return

        parent, grand_entry = path[-1]
        parent.entries.remove(entry_above)
        d_a = (
            self._dist(ids[a], parent.parent_obj)
            if parent.parent_obj is not None
            else 0.0
        )
        d_b = (
            self._dist(ids[b], parent.parent_obj)
            if parent.parent_obj is not None
            else 0.0
        )
        parent.entries.append(
            _MEntry(obj_id=ids[a], d_parent=d_a, radius=r_left, child=left)
        )
        parent.entries.append(
            _MEntry(obj_id=ids[b], d_parent=d_b, radius=r_right, child=right)
        )
        if len(parent.entries) > self.max_entries:
            self._split(parent, path[:-1], grand_entry)

    # -- queries -----------------------------------------------------------------

    def _query(self, q, k, exclude):
        best = KBestHeap(k)
        # Frontier of (lower bound, tiebreak, node, d(q, routing parent)).
        frontier: List = [(0.0, 0, self._root, None)]
        counter = 1
        while frontier:
            bound, _, node, d_q_parent = heapq.heappop(frontier)
            if bound > best.worst_distance:
                break
            self._visit_node()
            for entry in node.entries:
                # Triangle-inequality prefilter via the cached parent
                # distance: skip without computing d(q, entry).
                if d_q_parent is not None:
                    lower = abs(d_q_parent - entry.d_parent) - entry.radius
                    if lower > best.worst_distance:
                        continue
                d = self._dist_to_query(q, entry.obj_id)
                if node.is_leaf:
                    if exclude is not None and entry.obj_id == exclude:
                        continue
                    best.consider(d, entry.obj_id)
                else:
                    child_bound = max(0.0, d - entry.radius)
                    if child_bound <= best.worst_distance:
                        heapq.heappush(
                            frontier, (child_bound, counter, entry.child, d)
                        )
                        counter += 1
        return self._sort_result(*best.result())

    def _query_radius(self, q, radius, exclude):
        out_ids: List[int] = []
        out_dists: List[float] = []
        stack: List[Tuple[_MNode, Optional[float]]] = [(self._root, None)]
        while stack:
            node, d_q_parent = stack.pop()
            self._visit_node()
            for entry in node.entries:
                if d_q_parent is not None:
                    if abs(d_q_parent - entry.d_parent) - entry.radius > radius:
                        continue
                d = self._dist_to_query(q, entry.obj_id)
                if node.is_leaf:
                    if exclude is not None and entry.obj_id == exclude:
                        continue
                    if d <= radius:
                        out_ids.append(entry.obj_id)
                        out_dists.append(d)
                else:
                    if d - entry.radius <= radius:
                        stack.append((entry.child, d))
        return self._sort_result(np.array(out_ids, dtype=int), np.array(out_dists))

    # -- diagnostics -----------------------------------------------------------

    def leaf_point_ids(self) -> np.ndarray:
        ids: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                ids.extend(e.obj_id for e in node.entries)
            else:
                stack.extend(e.child for e in node.entries)
        return np.sort(np.array(ids, dtype=int))

    def check_invariants(self) -> None:
        """The M-tree invariants; raises on violation.

        1. every object in a routing entry's subtree lies within the
           entry's covering radius of its routing object;
        2. every entry's cached ``d_parent`` equals the true distance to
           the enclosing node's routing object.
        """

        def subtree_objects(node: _MNode) -> List[int]:
            if node.is_leaf:
                return [e.obj_id for e in node.entries]
            out: List[int] = []
            for e in node.entries:
                out.extend(subtree_objects(e.child))
            return out

        def walk(node: _MNode) -> None:
            for entry in node.entries:
                if node.parent_obj is not None:
                    true_d = self.metric.distance(
                        self._X[entry.obj_id], self._X[node.parent_obj]
                    )
                    if abs(true_d - entry.d_parent) > 1e-9:
                        raise ValidationError(
                            f"stale cached parent distance for object {entry.obj_id}"
                        )
                if not node.is_leaf:
                    for obj in subtree_objects(entry.child):
                        d = self.metric.distance(
                            self._X[obj], self._X[entry.obj_id]
                        )
                        if d > entry.radius + 1e-9:
                            raise ValidationError(
                                f"object {obj} outside covering radius of "
                                f"routing object {entry.obj_id}"
                            )
                    walk(entry.child)

        walk(self._root)
