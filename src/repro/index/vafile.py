"""VA-file (vector-approximation file) k-NN, after Weber, Schek & Blott.

Section 7.4 names the VA-file (reference [21]) as the sequential-scan
variant appropriate for extremely high-dimensional data. The idea: store a
compact quantized approximation of every vector (a few bits per
dimension); a query first scans the approximations, computing a lower and
an upper bound on each true distance from the quantization cell, and only
fetches the exact vectors of candidates whose lower bound beats the
current k-th upper bound. The scan stays O(n) but touches far less "disk"
(here: the full-precision array) than a plain scan.

Bound computation uses the metric's rectangle distances, so any supported
metric works.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..exceptions import ValidationError
from .base import KBestHeap, Neighborhood, NNIndex, register_index


@register_index
class VAFileIndex(NNIndex):
    """Exact k-NN over quantized vector approximations.

    Parameters
    ----------
    bits_per_dim : number of quantization bits per dimension (1-16).
        More bits tighten the bounds and shrink the candidate set, at the
        cost of a larger approximation file.
    """

    name = "vafile"

    def __init__(self, metric="euclidean", bits_per_dim: int = 4):
        super().__init__(metric=metric)
        if not 1 <= int(bits_per_dim) <= 16:
            raise ValidationError("bits_per_dim must be in [1, 16]")
        self.bits_per_dim = int(bits_per_dim)
        self._cells: Optional[np.ndarray] = None
        self._edges: Optional[np.ndarray] = None  # (levels+1, d) bin edges

    def _build(self, X: np.ndarray) -> None:
        n, d = X.shape
        levels = 2 ** self.bits_per_dim
        lo = X.min(axis=0)
        hi = X.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        # Uniform per-dimension bins; edges shape (levels + 1, d).
        steps = np.linspace(0.0, 1.0, levels + 1)[:, None]
        self._edges = lo[None, :] + steps * span[None, :]
        cells = np.floor((X - lo) / span * levels).astype(int)
        np.clip(cells, 0, levels - 1, out=cells)
        self._cells = cells

    def _cell_bounds(self, q: np.ndarray):
        """Lower/upper distance bound from q to every point's cell."""
        cells = self._cells
        n, d = cells.shape
        cols = np.arange(d)
        cell_lo = self._edges[cells, cols]      # (n, d)
        cell_hi = self._edges[cells + 1, cols]  # (n, d)
        self._visit_node(n)  # one approximation record per point
        lower = np.empty(n)
        upper = np.empty(n)
        # Rectangle bounds vectorized for the Minkowski-family metrics.
        clipped = np.minimum(np.maximum(q[None, :], cell_lo), cell_hi)
        far = np.where(
            np.abs(q[None, :] - cell_lo) > np.abs(q[None, :] - cell_hi),
            cell_lo,
            cell_hi,
        )
        name = self.metric.name
        if name == "euclidean":
            lower = np.sqrt(np.sum((q[None, :] - clipped) ** 2, axis=1))
            upper = np.sqrt(np.sum((q[None, :] - far) ** 2, axis=1))
        elif name == "manhattan":
            lower = np.sum(np.abs(q[None, :] - clipped), axis=1)
            upper = np.sum(np.abs(q[None, :] - far), axis=1)
        elif name == "chebyshev":
            lower = np.max(np.abs(q[None, :] - clipped), axis=1)
            upper = np.max(np.abs(q[None, :] - far), axis=1)
        else:
            p = getattr(self.metric, "p", 2.0)
            lower = np.sum(np.abs(q[None, :] - clipped) ** p, axis=1) ** (1.0 / p)
            upper = np.sum(np.abs(q[None, :] - far) ** p, axis=1) ** (1.0 / p)
        return lower, upper

    def _query(self, q, k, exclude):
        lower, upper = self._cell_bounds(q)
        if exclude is not None:
            lower = lower.copy()
            upper = upper.copy()
            lower[exclude] = np.inf
            upper[exclude] = np.inf
        # Phase 1: the k-th smallest *upper* bound caps the candidate set.
        if k < len(upper):
            cutoff = np.partition(upper, k - 1)[k - 1]
        else:
            cutoff = np.max(upper[np.isfinite(upper)])
        candidates = np.flatnonzero(lower <= cutoff)
        # Phase 2: refine candidates in ascending lower-bound order,
        # stopping once the next lower bound exceeds the k-th exact
        # distance found so far.
        order = candidates[np.argsort(lower[candidates], kind="stable")]
        best = KBestHeap(k)
        for pid in order:
            if lower[pid] > best.worst_distance:
                break
            dist = self.metric.distance(q, self._X[pid])
            self.stats.distance_evaluations += 1
            best.consider(dist, int(pid))
        return self._sort_result(*best.result())

    def _query_radius(self, q, radius, exclude):
        lower, upper = self._cell_bounds(q)
        candidates = np.flatnonzero(lower <= radius)
        if exclude is not None:
            candidates = candidates[candidates != exclude]
        out_ids = []
        out_dists = []
        for pid in candidates:
            dist = self.metric.distance(q, self._X[pid])
            self.stats.distance_evaluations += 1
            if dist <= radius:
                out_ids.append(int(pid))
                out_dists.append(dist)
        return self._sort_result(np.array(out_ids, dtype=int), np.array(out_dists))
