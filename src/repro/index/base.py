"""The ``NNIndex`` interface every k-NN substrate implements.

Section 7.4 of the paper makes the LOF computation index-agnostic: step 1
("materialization") issues one k-NN query per object against *some* access
method — a grid for low dimensions, a tree index (the authors used a
variant of the X-tree) for medium dimensions, or a sequential scan /
VA-file for very high dimensions. This module pins down the contract those
access methods satisfy so the core algorithm can swap them freely.

Two query flavors exist because of Definition 4's tie semantics: the
*k-distance neighborhood* contains **every** object at distance not greater
than the k-distance, so its cardinality may exceed ``k``.
``query`` returns exactly ``k`` neighbors; ``query_with_ties`` returns the
full tie-inclusive neighborhood.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

import numpy as np

from .. import obs
from .._validation import check_data
from ..exceptions import NotFittedError, ValidationError
from .metrics import Metric, get_metric


@dataclass
class QueryStats:
    """Bookkeeping counters exposed for the performance experiments.

    ``distance_evaluations`` counts calls into the metric (each row of a
    vectorized batch counts individually); ``nodes_visited`` counts index
    pages touched. Together they reproduce the "index degenerates with
    dimension" effect of Figure 10 without relying on wall-clock noise.
    """

    distance_evaluations: int = 0
    nodes_visited: int = 0
    queries: int = 0

    def reset(self) -> None:
        self.distance_evaluations = 0
        self.nodes_visited = 0
        self.queries = 0

    def merge(self, other: "QueryStats") -> None:
        self.distance_evaluations += other.distance_evaluations
        self.nodes_visited += other.nodes_visited
        self.queries += other.queries


@dataclass
class Neighborhood:
    """Result of one neighborhood query.

    Attributes
    ----------
    ids : int ndarray, ascending by distance (ties in ascending id order)
    distances : float ndarray aligned with ``ids``
    """

    ids: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def k_distance(self) -> float:
        """Distance of the farthest returned neighbor."""
        if len(self.distances) == 0:
            raise ValidationError("empty neighborhood has no k-distance")
        return float(self.distances[-1])


class KBestHeap:
    """Fixed-capacity candidate set keeping the k best (distance, id)
    pairs in lexicographic order.

    Deterministic tie handling matters for reproducibility: when two
    points are equidistant from the query (e.g. exact duplicates), every
    index must return the one with the smaller id, exactly like the
    brute-force oracle's (distance, id) sort. Internally a max-heap on
    ``(-distance, -id)`` so the lexicographically worst pair is evicted
    first.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int):
        self.k = int(k)
        self._heap: list = []

    @property
    def full(self) -> bool:
        return len(self._heap) == self.k

    @property
    def worst_distance(self) -> float:
        """Current k-th candidate distance (inf while not yet full)."""
        if len(self._heap) < self.k:
            return np.inf
        return -self._heap[0][0]

    def consider(self, dist: float, pid: int) -> None:
        item = (-float(dist), -int(pid))
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    def consider_many(self, dists, pids) -> None:
        dists = np.asarray(dists, dtype=np.float64).ravel()
        pids = np.asarray(pids, dtype=np.int64).ravel()
        if not self.full:
            # While not yet full every candidate is pushed, so feed the
            # heap until capacity before filtering the remainder.
            fill = min(self.k - len(self._heap), len(dists))
            for i in range(fill):
                self.consider(dists[i], pids[i])
            dists = dists[fill:]
            pids = pids[fill:]
            if len(dists) == 0:
                return
        # Vectorized pre-filter: once the heap is full only candidates at
        # most the current worst distance can ever be accepted
        # (worst_distance is non-increasing), so hopeless points never
        # reach the Python push loop. The filter must be <=, not <: an
        # equal-distance candidate with a smaller id still replaces the
        # worst entry under the (distance, id) order.
        keep = dists <= self.worst_distance
        if not keep.all():
            dists = dists[keep]
            pids = pids[keep]
        for dist, pid in zip(dists, pids):
            self.consider(dist, pid)

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        """(ids, distances), unsorted; pass through NNIndex._sort_result."""
        ids = np.array([-pid for _, pid in self._heap], dtype=int)
        dists = np.array([-negd for negd, _ in self._heap])
        return ids, dists


class NNIndex(ABC):
    """Abstract nearest-neighbor index over a fixed dataset."""

    #: short registry name, overridden by subclasses
    name: str = "abstract"

    def __init__(self, metric="euclidean"):
        self.metric: Metric = get_metric(metric)
        self.stats = QueryStats()
        self._X: Optional[np.ndarray] = None

    # -- lifecycle ---------------------------------------------------------

    def fit(self, X) -> "NNIndex":
        """Build the index over dataset ``X`` (n_samples, n_features)."""
        self._X = check_data(X, min_rows=1)
        self.stats.reset()
        self._build(self._X)
        return self

    @abstractmethod
    def _build(self, X: np.ndarray) -> None:
        """Construct internal structures; ``X`` is validated float64."""

    # -- introspection -----------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    @property
    def data(self) -> np.ndarray:
        self._require_fitted()
        return self._X

    @property
    def n_points(self) -> int:
        self._require_fitted()
        return self._X.shape[0]

    @property
    def n_features(self) -> int:
        self._require_fitted()
        return self._X.shape[1]

    def _require_fitted(self) -> None:
        if self._X is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted; call fit(X)")

    # -- instrumentation ---------------------------------------------------

    def _visit_node(self, n: int = 1) -> None:
        """Record ``n`` index node/page visits (per-index stats + the
        process-wide ``index.node_visits`` counter of :mod:`repro.obs`)."""
        self.stats.nodes_visited += n
        obs.incr("index.node_visits", n)

    # -- queries -----------------------------------------------------------

    def query(self, q, k: int, exclude: Optional[int] = None) -> Neighborhood:
        """Return the ``k`` nearest points to ``q`` (no tie expansion).

        ``exclude`` removes one dataset id from consideration — used to
        drop the query object itself, since Definition 3 ranges over
        ``D \\ {p}``.
        """
        self._require_fitted()
        q = self._check_query_point(q)
        k = self._check_k(k, exclude)
        self.stats.queries += 1
        obs.incr("knn.queries")
        return self._query(q, k, exclude)

    def query_with_ties(
        self, q, k: int, exclude: Optional[int] = None
    ) -> Neighborhood:
        """Return the tie-inclusive k-distance neighborhood of ``q``.

        This is ``N_{k-distance(q)}(q)`` of Definition 4: every point at
        distance not greater than the k-distance. Its length is >= k.
        """
        self._require_fitted()
        q = self._check_query_point(q)
        k = self._check_k(k, exclude)
        self.stats.queries += 1
        obs.incr("knn.queries")
        return self._query_with_ties(q, k, exclude)

    def query_radius(self, q, radius: float, exclude: Optional[int] = None) -> Neighborhood:
        """Return every point within ``radius`` of ``q`` (closed ball)."""
        self._require_fitted()
        q = self._check_query_point(q)
        if not np.isfinite(radius) or radius < 0:
            raise ValidationError(f"radius must be finite and >= 0, got {radius}")
        self.stats.queries += 1
        obs.incr("knn.queries")
        return self._query_radius(q, float(radius), exclude)

    # -- batched queries ----------------------------------------------------

    def query_batch(
        self, Q, k: int, exclude: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer ``m`` plain k-NN queries in one call (no tie expansion).

        Parameters
        ----------
        Q : (m, d) block of query points.
        k : neighbors per query.
        exclude : optional (m,) int array of dataset ids to drop per row
            (``-1`` entries mean "no exclusion for this row") — the batch
            analog of the scalar ``exclude`` of :meth:`query`.

        Returns
        -------
        ids, distances : (m, k) arrays; row i is the answer for ``Q[i]``
            in the deterministic (distance, id) order.
        """
        Q, exclude, k = self._check_batch(Q, k, exclude)
        self._count_batch(Q.shape[0])
        return self._query_batch(Q, k, exclude)

    def query_batch_with_ties(
        self, Q, k: int, exclude: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer ``m`` tie-inclusive k-distance-neighborhood queries.

        The batch analog of :meth:`query_with_ties`: row i contains every
        point at distance not greater than ``Q[i]``'s k-distance
        (Definition 4), sorted by (distance, id). Rows are padded to the
        longest neighborhood with id ``-1`` / distance ``inf`` — the same
        layout :class:`~repro.core.materialization.MaterializationDB`
        stores.

        Returns
        -------
        ids, distances : (m, L) padded arrays, ``L >= k``.
        """
        Q, exclude, k = self._check_batch(Q, k, exclude)
        self._count_batch(Q.shape[0])
        return self._query_batch_with_ties(Q, k, exclude)

    def _count_batch(self, m: int) -> None:
        """One batch call == m logical queries plus one batch crossing."""
        self.stats.queries += m
        obs.incr("knn.queries", m)
        obs.incr("knn.batch_queries")

    def _check_batch(self, Q, k: int, exclude) -> Tuple[np.ndarray, np.ndarray, int]:
        self._require_fitted()
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[1] != self._X.shape[1]:
            raise ValidationError(
                f"Q must be 2-dimensional with {self._X.shape[1]} feature "
                f"column(s), got shape {np.shape(Q)}"
            )
        if Q.shape[0] < 1:
            raise ValidationError("Q must contain at least one query row")
        if not np.all(np.isfinite(Q)):
            raise ValidationError("Q contains NaN or infinite values")
        if exclude is None:
            exclude = np.full(Q.shape[0], -1, dtype=np.int64)
        else:
            exclude = np.asarray(exclude, dtype=np.int64).reshape(-1)
            if exclude.shape[0] != Q.shape[0]:
                raise ValidationError(
                    f"exclude must have one entry per query row "
                    f"({Q.shape[0]}), got {exclude.shape[0]}"
                )
            if np.any(exclude >= self._X.shape[0]):
                raise ValidationError(
                    "exclude contains ids beyond the fitted dataset"
                )
        # k is bounded by the worst row: one point fewer when excluded.
        k = self._check_k(k, 0 if np.any(exclude >= 0) else None)
        return np.ascontiguousarray(Q), exclude, k

    # -- hooks for subclasses ----------------------------------------------

    @abstractmethod
    def _query(self, q: np.ndarray, k: int, exclude: Optional[int]) -> Neighborhood:
        ...

    def _query_with_ties(
        self, q: np.ndarray, k: int, exclude: Optional[int]
    ) -> Neighborhood:
        # Default: find the k-distance with a plain k-NN query, then take
        # the closed ball of that radius. Subclasses with cheaper paths
        # (e.g. the brute-force scan) override this.
        base = self._query(q, k, exclude)
        return self._query_radius(q, base.k_distance, exclude)

    @abstractmethod
    def _query_radius(
        self, q: np.ndarray, radius: float, exclude: Optional[int]
    ) -> Neighborhood:
        ...

    def _query_batch(
        self, Q: np.ndarray, k: int, exclude: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Generic fallback for tree/grid backends: one traversal per row.
        # Every row returns exactly k entries, so no padding is needed.
        ids = np.empty((Q.shape[0], k), dtype=np.int64)
        dists = np.empty((Q.shape[0], k), dtype=np.float64)
        for i in range(Q.shape[0]):
            excl = int(exclude[i]) if exclude[i] >= 0 else None
            hood = self._query(Q[i], k, excl)
            ids[i] = hood.ids
            dists[i] = hood.distances
        return ids, dists

    def _query_batch_with_ties(
        self, Q: np.ndarray, k: int, exclude: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Generic fallback: per-row traversals, padded to the widest row.
        hoods = []
        for i in range(Q.shape[0]):
            excl = int(exclude[i]) if exclude[i] >= 0 else None
            hoods.append(self._query_with_ties(Q[i], k, excl))
        width = max(len(h) for h in hoods)
        ids = np.full((Q.shape[0], width), -1, dtype=np.int64)
        dists = np.full((Q.shape[0], width), np.inf, dtype=np.float64)
        for i, hood in enumerate(hoods):
            ids[i, : len(hood)] = hood.ids
            dists[i, : len(hood)] = hood.distances
        return ids, dists

    # -- shared helpers ----------------------------------------------------

    def _check_query_point(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64).reshape(-1)
        if q.shape[0] != self._X.shape[1]:
            raise ValidationError(
                f"query point has {q.shape[0]} features, index holds "
                f"{self._X.shape[1]}"
            )
        if not np.all(np.isfinite(q)):
            raise ValidationError("query point contains NaN or infinite values")
        return q

    def _check_k(self, k: int, exclude: Optional[int]) -> int:
        if not isinstance(k, (int, np.integer)) or isinstance(k, bool):
            raise ValidationError(f"k must be an integer, got {k!r}")
        available = self._X.shape[0] - (1 if exclude is not None else 0)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if k > available:
            raise ValidationError(
                f"k={k} exceeds the {available} available points"
            )
        return int(k)

    @staticmethod
    def _sort_result(ids: np.ndarray, dists: np.ndarray) -> Neighborhood:
        """Order by (distance, id) so results are deterministic under ties."""
        order = np.lexsort((ids, dists))
        return Neighborhood(ids=ids[order], distances=dists[order])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = f"n={self._X.shape[0]}, d={self._X.shape[1]}" if self._X is not None else "unfitted"
        return f"{type(self).__name__}({fitted}, metric={self.metric.name})"


# ---------------------------------------------------------------------------
# registry


_REGISTRY: Dict[str, Type[NNIndex]] = {}


def register_index(cls: Type[NNIndex]) -> Type[NNIndex]:
    """Class decorator adding an index to the ``make_index`` registry."""
    if not cls.name or cls.name == "abstract":
        raise ValidationError(f"index class {cls.__name__} must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def available_indexes() -> Tuple[str, ...]:
    """Names accepted by :func:`make_index`, sorted."""
    return tuple(sorted(_REGISTRY))


def make_index(index, metric="euclidean", **kwargs) -> NNIndex:
    """Resolve ``index`` (name, class, or instance) into an ``NNIndex``.

    Passing an instance returns it unchanged (the ``metric`` argument must
    then be left at its default or match the instance's metric).
    """
    if isinstance(index, NNIndex):
        return index
    if isinstance(index, type) and issubclass(index, NNIndex):
        return index(metric=metric, **kwargs)
    if isinstance(index, str):
        key = index.lower()
        if key not in _REGISTRY:
            raise ValidationError(
                f"unknown index {index!r}; available: {available_indexes()}"
            )
        return _REGISTRY[key](metric=metric, **kwargs)
    raise ValidationError(
        f"index must be a name, NNIndex class, or instance; got {type(index).__name__}"
    )
